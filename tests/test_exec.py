"""Tests for the trial execution subsystem (repro.exec).

Covers the executor determinism matrix (serial / thread / process
campaigns produce byte-identical results tables), the failure paths
(timeout, worker crash, retry-then-succeed), the campaign journal
(round-trip, interrupt-then-resume, identity mismatch, torn tail) and
the concurrency satellites (MedianPruner thread safety, TPE
constant-liar, telemetry merge).
"""

from __future__ import annotations

import json
import os
import pickle
import threading
import time

import pytest

from repro.core import (
    Campaign,
    Categorical,
    Configuration,
    GridSearch,
    MedianPruner,
    Metric,
    MetricSet,
    NoPruner,
    ParameterSpace,
    TrialStatus,
)
from repro.core.serialization import table_fingerprint, trial_from_dict, trial_to_dict
from repro.core.tpe import TPESampler
from repro.exec import (
    EXECUTORS,
    CampaignJournal,
    JournalMismatch,
    NO_RETRY,
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.obs import EVT_TRIAL_RETRIED, RingBufferSink, Telemetry


# --------------------------------------------------------------- fixtures
# module-level so they pickle for the process executor (fork and spawn)
class PicklableCaseStudy:
    """quality/cost follow the config; optional failure/sleep knobs."""

    def __init__(self, fail_on=None, sleep_s=0.0, curve_points=3):
        self.fail_on = set(fail_on or ())
        self.sleep_s = sleep_s
        self.curve_points = curve_points
        self.evaluated = []

    def evaluate(self, config, seed, progress=None):
        self.evaluated.append(config)
        if config["quality"] in self.fail_on:
            raise RuntimeError("boom")
        if self.sleep_s:
            time.sleep(self.sleep_s)
        quality, cost = float(config["quality"]), float(config["cost"])
        if progress is not None:
            for step in range(1, self.curve_points + 1):
                value = quality * step / self.curve_points
                if progress(step, value):
                    return {"reward": value, "time": cost * step / self.curve_points}
        return {"reward": quality + seed * 0.001, "time": cost}


class CrashingCaseStudy:
    """Dies without reporting — the containment worst case."""

    def evaluate(self, config, seed, progress=None):
        os._exit(13)


class FlakyOnceCaseStudy:
    """Fails each trial's first attempt; any later attempt succeeds.

    The sentinel lives on disk so the pattern survives process
    boundaries (a retried process-executor trial is a fresh worker).
    """

    def __init__(self, sentinel_dir):
        self.sentinel_dir = str(sentinel_dir)

    def evaluate(self, config, seed, progress=None):
        marker = os.path.join(self.sentinel_dir, f"{config.trial_id}.attempted")
        if not os.path.exists(marker):
            with open(marker, "w") as handle:
                handle.write("x")
            raise RuntimeError("transient")
        return {"reward": float(config["quality"]), "time": float(config["cost"])}


class InterruptingCaseStudy:
    """Raises KeyboardInterrupt (a Ctrl-C) at a chosen trial."""

    def __init__(self, interrupt_at):
        self.interrupt_at = interrupt_at

    def evaluate(self, config, seed, progress=None):
        if config.trial_id == self.interrupt_at:
            raise KeyboardInterrupt
        return {"reward": float(config["quality"]), "time": float(config["cost"])}


class InverseDurationCaseStudy:
    """Early trials run longest, so completion order inverts submission."""

    def evaluate(self, config, seed, progress=None):
        time.sleep(0.05 * (5 - config["quality"]))
        return {"reward": float(config["quality"]), "time": float(config["cost"])}


def space():
    return ParameterSpace(
        [Categorical("quality", [1, 2, 3, 4]), Categorical("cost", [10, 20])]
    )


def metrics():
    return MetricSet(
        [Metric(name="reward", direction="max"), Metric(name="time", direction="min")]
    )


def campaign(study=None, **kwargs):
    return Campaign(
        study if study is not None else PicklableCaseStudy(),
        space(),
        GridSearch(space()),
        metrics(),
        **kwargs,
    )


# ------------------------------------------------------------ retry policy
class TestRetryPolicy:
    def test_defaults_and_validation(self):
        assert NO_RETRY.max_retries == 0
        assert not NO_RETRY.should_retry(0)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(max_retries=5, backoff_s=1.0, backoff_factor=2.0,
                             max_backoff_s=3.0)
        assert policy.delay(0) == 1.0
        assert policy.delay(1) == 2.0
        assert policy.delay(2) == 3.0  # capped
        assert policy.should_retry(4) and not policy.should_retry(5)

    def test_of_normalizes_int_and_none(self):
        assert RetryPolicy.of(None) is NO_RETRY
        assert RetryPolicy.of(3).max_retries == 3
        policy = RetryPolicy(max_retries=1)
        assert RetryPolicy.of(policy) is policy


# ------------------------------------------------------------- executors
class TestExecutorRegistry:
    def test_registry_and_factory(self):
        # "remote" registers lazily when repro.net first imports, so the
        # built-ins are a floor, not the whole set
        assert {"serial", "thread", "process"} <= set(EXECUTORS)
        assert set(EXECUTORS) <= {"serial", "thread", "process", "remote"}
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert make_executor("thread", 2).max_workers == 2
        with pytest.raises(ValueError):
            make_executor("cluster")
        with pytest.raises(ValueError):
            ThreadExecutor(max_workers=0)

    def test_remote_registers_lazily_through_factory(self):
        executor = make_executor("remote", 2)
        try:
            assert executor.name == "remote"
            assert executor.max_workers == 2
            assert "remote" in EXECUTORS
        finally:
            executor.shutdown()

    def test_serial_pins_max_workers_to_one(self):
        assert SerialExecutor(max_workers=8).max_workers == 1


class TestDeterminismMatrix:
    """Serial, thread and process campaigns make identical decisions."""

    def fingerprint(self, executor, **kwargs):
        report = campaign(executor=executor, max_workers=3,
                          seed_strategy="increment", **kwargs).run()
        assert report.meta["n_completed"] == 8
        return table_fingerprint(report.table)

    def test_thread_matches_serial(self):
        assert self.fingerprint("thread") == self.fingerprint(None)

    def test_process_matches_serial(self):
        reference = self.fingerprint(None)
        assert self.fingerprint(ProcessExecutor(3, mp_context="fork")) == reference

    def test_spawn_process_matches_serial(self):
        reference = self.fingerprint(None)
        spawned = self.fingerprint(ProcessExecutor(2, mp_context="spawn"))
        assert spawned == reference

    def test_results_commit_in_submission_order(self):
        # completion order is inverted (trial 1 slowest); the table and
        # the explorer must still see submission order
        report = campaign(InverseDurationCaseStudy(), executor="thread",
                          max_workers=4).run()
        ids = [t.trial_id for t in report.table]
        assert ids == sorted(ids)

    def test_fingerprint_ignores_wallclock_noise(self):
        a = campaign().run()
        b = campaign().run()
        assert table_fingerprint(a.table) == table_fingerprint(b.table)


# ------------------------------------------------------------ failure paths
class TestTimeouts:
    def test_thread_trial_past_deadline_becomes_timeout_failure(self):
        study = PicklableCaseStudy(sleep_s=1.0)
        report = campaign(study, executor="thread", max_workers=2,
                          trial_timeout=0.15).run()
        assert report.meta["n_failed"] == 8
        for trial in report.table:
            assert trial.status == TrialStatus.FAILED
            assert trial.extras["failure_kind"] == "timeout"
            assert "timeout" in trial.extras["error"]

    def test_process_trial_past_deadline_is_terminated(self):
        study = PicklableCaseStudy(sleep_s=30.0)
        start = time.monotonic()
        report = campaign(study, executor=ProcessExecutor(2, mp_context="fork"),
                          trial_timeout=0.3).run()
        assert time.monotonic() - start < 25.0  # workers were killed, not waited
        assert report.meta["n_failed"] == 8
        assert all(t.extras["failure_kind"] == "timeout" for t in report.table)

    def test_serial_ignores_timeout(self):
        report = campaign(PicklableCaseStudy(sleep_s=0.01),
                          trial_timeout=0.001).run()
        assert report.meta["n_completed"] == 8


class TestCrashContainment:
    def test_dead_worker_becomes_crashed_failure_not_poisoned_pool(self):
        report = campaign(CrashingCaseStudy(),
                          executor=ProcessExecutor(2, mp_context="fork")).run()
        assert report.meta["n_failed"] == 8
        for trial in report.table:
            assert trial.extras["failure_kind"] == "crashed"
            assert "exitcode" in trial.extras["error"]

    def test_crash_then_healthy_trials_still_complete(self):
        # only quality==1 crashes; the other six trials must survive
        study = PicklableCaseStudy(fail_on={1})
        report = campaign(study,
                          executor=ProcessExecutor(2, mp_context="fork")).run()
        assert report.meta["n_completed"] == 6
        assert report.meta["n_failed"] == 2


class TestRetries:
    @pytest.mark.parametrize("executor", [
        None,
        "thread",
        ProcessExecutor(2, mp_context="fork"),
    ])
    def test_flaky_trials_retry_then_succeed(self, tmp_path, executor):
        sink = RingBufferSink()
        study = FlakyOnceCaseStudy(tmp_path)
        report = campaign(
            study,
            executor=executor,
            max_workers=2,
            retry=RetryPolicy(max_retries=2, backoff_s=0.0),
            telemetry=Telemetry(sink),
        ).run()
        assert report.meta["n_completed"] == 8
        assert report.meta["n_retried"] == 8
        assert all(t.extras["attempts"] == 2 for t in report.table)
        retried = sink.events(EVT_TRIAL_RETRIED)
        assert len(retried) == 8
        assert all(e["fields"]["status"] == "failed" for e in retried)

    def test_deterministic_failure_burns_attempts_then_fails(self):
        study = PicklableCaseStudy(fail_on={1, 2, 3, 4})
        report = campaign(study, retry=1).run()
        assert report.meta["n_failed"] == 8
        assert report.meta["n_retried"] == 8
        assert all(t.extras["attempts"] == 2 for t in report.table)
        # serial executor shares the study: 8 trials x 2 attempts
        assert len(study.evaluated) == 16

    def test_retry_keeps_config_and_seed(self, tmp_path):
        study = FlakyOnceCaseStudy(tmp_path)
        report = campaign(study, retry=1, base_seed=9,
                          seed_strategy="increment").run()
        assert all(t.seed == 9 + t.trial_id for t in report.table)

    def test_raise_on_error_propagates_after_retries(self):
        study = PicklableCaseStudy(fail_on={1, 2, 3, 4})
        with pytest.raises(RuntimeError, match="boom"):
            campaign(study, retry=1, raise_on_error=True).run()


# ---------------------------------------------------------------- journal
class TestJournal:
    def test_round_trip_replays_without_reevaluation(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        first = campaign(journal=CampaignJournal(path))
        first.run()
        study = PicklableCaseStudy()
        resumed = campaign(study, journal=CampaignJournal.resume(path))
        report = resumed.run()
        assert study.evaluated == []  # everything replayed
        assert report.meta["n_replayed"] == 8
        assert report.meta["n_completed"] == 8

    def test_resumed_table_matches_original(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        original = campaign(journal=CampaignJournal(path)).run()
        resumed = campaign(journal=CampaignJournal.resume(path)).run()
        assert table_fingerprint(resumed.table) == table_fingerprint(original.table)

    def test_interrupt_then_resume_skips_completed_trials(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with pytest.raises(KeyboardInterrupt):
            campaign(InterruptingCaseStudy(interrupt_at=5),
                     journal=CampaignJournal(path)).run()
        recorded = CampaignJournal.resume(path).n_recorded
        assert 0 < recorded < 8
        study = PicklableCaseStudy()
        report = campaign(study, journal=CampaignJournal.resume(path)).run()
        assert report.meta["n_completed"] == 8
        assert len(study.evaluated) == 8 - recorded
        assert {t.trial_id for t in report.table} == set(range(1, 9))

    def test_resume_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CampaignJournal.resume(tmp_path / "nope.jsonl")

    def test_identity_mismatch_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        campaign(journal=CampaignJournal(path), base_seed=0).run()
        with pytest.raises(JournalMismatch):
            campaign(journal=CampaignJournal.resume(path), base_seed=1).run()

    def test_identity_mismatch_names_the_field(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        campaign(journal=CampaignJournal(path), base_seed=0).run()
        with pytest.raises(JournalMismatch, match="base_seed"):
            campaign(journal=CampaignJournal.resume(path), base_seed=1).run()

    def test_space_mismatch_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        campaign(journal=CampaignJournal(path)).run()
        grown = ParameterSpace(
            [Categorical("quality", [1, 2, 3, 4, 5]), Categorical("cost", [10, 20])]
        )
        other = Campaign(
            PicklableCaseStudy(),
            grown,
            GridSearch(grown),
            metrics(),
            journal=CampaignJournal.resume(path),
        )
        with pytest.raises(JournalMismatch, match="space"):
            other.run()

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        campaign(journal=CampaignJournal(path)).run()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "trial", "trial_id": 99, "conf')  # torn write
        journal = CampaignJournal.resume(path)
        assert journal.n_recorded == 8

    def test_torn_header_is_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"type": "campaign", "format_version": 1, "explo\n')
        with pytest.raises(JournalMismatch, match="header"):
            CampaignJournal.resume(path)

    def test_non_campaign_header_is_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"type": "trial", "trial_id": 1}\n')
        with pytest.raises(JournalMismatch, match="header"):
            CampaignJournal.resume(path)

    def test_lookup_requires_matching_config(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CampaignJournal(path)
        journal.open({"explorer": "X", "base_seed": 0,
                      "seed_strategy": "fixed", "metrics": ["reward"]})
        trial = trial_from_dict(trial_to_dict(
            campaign().run().table[1]
        ))
        journal.record(trial, [(1, 0.5)])
        same = Configuration(trial.config.as_dict(), trial_id=trial.trial_id)
        hit = journal.lookup(same)
        assert hit is not None and hit[1] == [(1, 0.5)]
        other = Configuration({**trial.config.as_dict(), "quality": 999},
                              trial_id=trial.trial_id)
        assert journal.lookup(other) is None

    def test_failed_trials_are_journaled_too(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        campaign(PicklableCaseStudy(fail_on={2}),
                 journal=CampaignJournal(path)).run()
        rows = [json.loads(line) for line in open(path, encoding="utf-8")]
        statuses = [r["status"] for r in rows if r["type"] == "trial"]
        assert statuses.count(TrialStatus.FAILED) == 2
        # resuming replays the failure instead of re-running it
        report = campaign(journal=CampaignJournal.resume(path)).run()
        assert report.meta["n_failed"] == 2
        assert report.meta["n_replayed"] == 8


# --------------------------------------------- concurrent pruner / explorer
class TestMedianPrunerConcurrency:
    def test_concurrent_reports_are_consistent(self):
        pruner = MedianPruner(n_startup_trials=1)
        errors = []

        def hammer(trial_id):
            try:
                for step in range(1, 51):
                    pruner.report(trial_id, step, float(trial_id * step))
                pruner.finish(trial_id)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(pruner._finished) == 8
        assert all(len(pruner._histories[i]) == 50 for i in range(8))

    def test_out_of_order_and_duplicate_steps_tolerated(self):
        pruner = MedianPruner(n_startup_trials=1, interval=3)
        # steps arrive out of order; duplicates must not advance the cadence
        assert pruner.report(1, 5, 0.5) is False  # 1 distinct step
        assert pruner.report(1, 5, 0.5) is False  # still 1
        pruner.report(1, 2, 0.2)
        pruner.finish(2) or None
        pruner._histories[2][5] = 10.0
        # third distinct step hits the interval and sees peer data
        assert pruner.report(1, 9, 0.1) is True

    def test_absorb_feeds_comparison_data(self):
        pruner = MedianPruner(n_startup_trials=1)
        pruner.absorb(1, [(1, 10.0), (2, 20.0)])
        pruner.finish(1)
        assert pruner.report(2, 2, 0.5) is True  # well under the median

    def test_pickle_round_trip_preserves_state_and_lock(self):
        pruner = MedianPruner(n_startup_trials=1)
        pruner.absorb(1, [(1, 5.0)])
        pruner.finish(1)
        clone = pickle.loads(pickle.dumps(pruner))
        assert clone._histories[1] == {1: 5.0}
        assert clone.report(2, 1, 0.1) is True  # lock was rebuilt

    def test_campaign_with_pruner_on_thread_executor(self):
        report = campaign(pruner=MedianPruner(n_startup_trials=2),
                          executor="thread", max_workers=2).run()
        assert report.meta["n_trials"] == 8


class TestTPEConstantLiar:
    def make_sampler(self):
        sampler = TPESampler(space(), n_trials=50, seed=1, n_startup=4)
        for q, c in [(1, 10), (2, 20), (3, 10), (4, 20)]:
            config = Configuration({"quality": q, "cost": c})
            sampler.tell(config, {"loss": float(q)})
        return sampler

    def test_pending_configs_are_imputed_as_bad(self):
        sampler = self.make_sampler()
        pending = Configuration({"quality": 4, "cost": 10})
        sampler.mark_pending(pending)
        good, bad = sampler._split()
        assert any(cfg.key() == pending.key() for cfg in bad)
        assert not any(cfg.key() == pending.key() for cfg in good)

    def test_tell_and_clear_drop_the_lie(self):
        sampler = self.make_sampler()
        pending = Configuration({"quality": 4, "cost": 10})
        sampler.mark_pending(pending)
        assert sampler.n_pending == 1
        sampler.tell(pending, {"loss": 0.5})
        assert sampler.n_pending == 0
        sampler.mark_pending(pending)
        sampler.clear_pending(pending)
        assert sampler.n_pending == 0

    def test_parallel_campaign_with_tpe_completes(self):
        sampler = TPESampler(space(), n_trials=12, seed=3, n_startup=4)
        report = Campaign(
            PicklableCaseStudy(), space(), sampler, metrics(),
            executor="thread", max_workers=3,
        ).run()
        assert report.meta["n_trials"] == 12
        assert sampler.n_pending == 0  # every lie resolved


# ------------------------------------------------------- telemetry merging
class TestTelemetryAcrossExecutors:
    def test_thread_records_merge_with_worker_attribution(self):
        sink = RingBufferSink()
        report = campaign(executor="thread", max_workers=2,
                          telemetry=Telemetry(sink)).run()
        trial_spans = [s for s in sink.spans() if s["name"] == "trial"]
        assert len(trial_spans) == 8
        ids = [s["id"] for s in sink.spans()]
        assert len(ids) == len(set(ids))  # re-based, no collisions
        workers = {s["ctx"]["worker"] for s in trial_spans}
        assert all(w.startswith("trial") for w in workers)
        # aggregate meters snapshot still lands in meta
        assert "telemetry" in report.meta

    def test_process_records_come_home_rebased(self):
        sink = RingBufferSink()
        campaign(executor=ProcessExecutor(2, mp_context="fork"),
                 telemetry=Telemetry(sink)).run()
        trial_spans = [s for s in sink.spans() if s["name"] == "trial"]
        assert len(trial_spans) == 8
        assert all(s["ctx"]["worker"].startswith("proc-") for s in trial_spans)
        assert {s["fields"]["trial_id"] for s in trial_spans} == set(range(1, 9))

    def test_serial_path_still_shares_the_campaign_telemetry(self):
        sink = RingBufferSink()
        telem = Telemetry(sink)
        report = campaign(telemetry=telem).run()
        trial_spans = [s for s in sink.spans() if s["name"] == "trial"]
        assert len(trial_spans) == 8
        assert all("worker" not in (s.get("ctx") or {}) for s in trial_spans)
        assert report.meta["telemetry"] is not None
