"""Tests for SyncVectorEnv."""

from __future__ import annotations

import numpy as np
import pytest

from repro.airdrop import AirdropEnv
from repro.envs import Box, Env, SyncVectorEnv


class FixedLengthEnv(Env):
    """Deterministic env terminating after `length` steps."""

    def __init__(self, length: int = 3) -> None:
        self.observation_space = Box(-np.inf, np.inf, shape=(2,))
        self.action_space = Box(-1, 1, shape=(1,))
        self.length = length
        self.t = 0

    def reset(self, *, seed=None, options=None):
        super().reset(seed=seed)
        self.t = 0
        return np.array([0.0, 0.0]), {}

    def step(self, action):
        self.t += 1
        obs = np.array([float(self.t), 0.0])
        return obs, float(self.t), self.t >= self.length, False, {}


class TestSyncVectorEnv:
    def test_requires_at_least_one_env(self):
        with pytest.raises(ValueError):
            SyncVectorEnv([])

    def test_reset_shapes(self):
        venv = SyncVectorEnv([lambda: FixedLengthEnv() for _ in range(4)])
        obs, infos = venv.reset(seed=0)
        assert obs.shape == (4, 2)
        assert len(infos) == 4

    def test_step_shapes(self):
        venv = SyncVectorEnv([lambda: FixedLengthEnv() for _ in range(3)])
        venv.reset()
        obs, rewards, terms, truncs, infos = venv.step(np.zeros((3, 1)))
        assert obs.shape == (3, 2)
        assert rewards.shape == (3,)
        assert terms.dtype == bool and truncs.dtype == bool

    def test_autoreset_returns_fresh_obs(self):
        venv = SyncVectorEnv([lambda: FixedLengthEnv(length=2) for _ in range(2)])
        venv.reset()
        venv.step(np.zeros((2, 1)))
        obs, rewards, terms, _, infos = venv.step(np.zeros((2, 1)))
        assert np.all(terms)
        # observation is the first of the NEXT episode (reset state)
        assert np.allclose(obs, 0.0)
        # terminal observation preserved in info
        for info in infos:
            assert np.allclose(info["final_observation"], [2.0, 0.0])
            assert info["episode"]["l"] == 2

    def test_episode_stats_accumulate(self):
        venv = SyncVectorEnv([lambda: FixedLengthEnv(length=3) for _ in range(2)])
        venv.reset()
        for _ in range(6):
            venv.step(np.zeros((2, 1)))
        assert len(venv.stats) == 4  # 2 envs x 2 episodes
        assert venv.stats.returns[0] == 6.0  # 1+2+3

    def test_recent_mean_return(self):
        venv = SyncVectorEnv([lambda: FixedLengthEnv(length=1) for _ in range(1)])
        venv.reset()
        for _ in range(5):
            venv.step(np.zeros((1, 1)))
        assert venv.stats.recent_mean_return() == 1.0

    def test_seed_fans_out_distinct_episodes(self):
        venv = SyncVectorEnv([lambda: AirdropEnv(rk_order=3) for _ in range(3)])
        obs, _ = venv.reset(seed=7)
        # different sub-seeds -> different drop points
        assert not np.allclose(obs[0], obs[1])
        obs2, _ = venv.reset(seed=7)
        assert np.allclose(obs, obs2)  # but reproducible

    def test_sample_actions_shape(self, rng):
        venv = SyncVectorEnv([lambda: FixedLengthEnv() for _ in range(4)])
        actions = venv.sample_actions(rng)
        assert actions.shape == (4, 1)

    def test_len_and_repr(self):
        venv = SyncVectorEnv([lambda: FixedLengthEnv() for _ in range(2)])
        assert len(venv) == 2
        assert "2" in repr(venv)
