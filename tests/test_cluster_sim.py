"""Tests for the discrete-event cluster simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSimulator, ClusterSpec, LinkSpec, NodeSpec, paper_testbed


def two_node_sim() -> ClusterSimulator:
    return ClusterSimulator(paper_testbed(2))


class TestTaskAuthoring:
    def test_invalid_node(self):
        sim = two_node_sim()
        with pytest.raises(ValueError):
            sim.task("t", node=5, duration=1.0)

    def test_too_many_cores(self):
        sim = two_node_sim()
        with pytest.raises(ValueError):
            sim.task("t", node=0, duration=1.0, cores=8)

    def test_negative_duration(self):
        sim = two_node_sim()
        with pytest.raises(ValueError):
            sim.task("t", node=0, duration=-1.0)

    def test_foreign_dependency_rejected(self):
        sim_a, sim_b = two_node_sim(), two_node_sim()
        t = sim_a.task("a", 0, 1.0)
        from repro.cluster.simulator import Task

        with pytest.raises(ValueError):
            sim_b.task("b", 0, 1.0, deps=[Task("x", 0, 1, 1.0)])


class TestScheduling:
    def test_single_task_makespan(self):
        sim = two_node_sim()
        sim.task("t", 0, duration=3.5)
        trace = sim.run()
        assert trace.makespan == pytest.approx(3.5)

    def test_parallel_tasks_share_cores(self):
        sim = two_node_sim()
        for i in range(4):
            sim.task(f"t{i}", 0, duration=2.0)
        trace = sim.run()
        assert trace.makespan == pytest.approx(2.0)  # 4 cores → all parallel

    def test_oversubscription_serializes(self):
        sim = two_node_sim()
        for i in range(5):
            sim.task(f"t{i}", 0, duration=2.0)
        trace = sim.run()
        assert trace.makespan == pytest.approx(4.0)  # fifth task waits

    def test_multicore_task_blocks_node(self):
        sim = two_node_sim()
        sim.task("big", 0, duration=1.0, cores=4)
        sim.task("small", 0, duration=1.0, cores=1)
        trace = sim.run()
        assert trace.makespan == pytest.approx(2.0)

    def test_dependency_ordering(self):
        sim = two_node_sim()
        a = sim.task("a", 0, duration=1.0)
        b = sim.task("b", 0, duration=1.0, deps=[a])
        c = sim.task("c", 0, duration=1.0, deps=[b])
        trace = sim.run()
        assert trace.makespan == pytest.approx(3.0)
        spans = {s.name: s for s in trace.tasks}
        assert spans["b"].start >= spans["a"].end
        assert spans["c"].start >= spans["b"].end

    def test_fork_join(self):
        sim = two_node_sim()
        root = sim.task("root", 0, 1.0)
        children = [sim.task(f"c{i}", 0, 2.0, deps=[root]) for i in range(4)]
        join = sim.task("join", 0, 0.5, deps=children)
        trace = sim.run()
        assert trace.makespan == pytest.approx(1.0 + 2.0 + 0.5)

    def test_cross_node_parallelism(self):
        sim = two_node_sim()
        sim.task("a", 0, duration=5.0, cores=4)
        sim.task("b", 1, duration=5.0, cores=4)
        trace = sim.run()
        assert trace.makespan == pytest.approx(5.0)

    def test_no_core_oversubscription_in_trace(self):
        rng = np.random.default_rng(0)
        sim = two_node_sim()
        prev = None
        for i in range(40):
            deps = [prev] if prev and rng.random() < 0.3 else []
            t = sim.task(f"t{i}", int(rng.integers(2)), float(rng.uniform(0.1, 3.0)),
                         cores=int(rng.integers(1, 5)), deps=deps)
            if rng.random() < 0.5:
                prev = t
        trace = sim.run()
        for node in (0, 1):
            times, busy = trace.busy_core_timeline(node)
            assert np.all(busy <= 4)
            assert np.all(busy >= 0)

    def test_deterministic_replay(self):
        def build():
            sim = two_node_sim()
            a = sim.task("a", 0, 1.0)
            b = sim.transfer("x", 0, 1, 1e6, deps=[a])
            sim.task("c", 1, 2.0, deps=[b])
            return sim.run()

        t1, t2 = build(), build()
        assert t1.makespan == t2.makespan
        assert [s.name for s in t1.tasks] == [s.name for s in t2.tasks]


class TestTransfers:
    def test_transfer_time_formula(self):
        spec = paper_testbed(2)
        sim = ClusterSimulator(spec)
        sim.transfer("x", 0, 1, n_bytes=1.25e8)  # 1 Gbit = 1s at 1 Gbps
        trace = sim.run()
        expected = spec.link.latency_s + 1.0
        assert trace.makespan == pytest.approx(expected)

    def test_same_node_transfer_free(self):
        sim = two_node_sim()
        sim.transfer("x", 0, 0, n_bytes=1e9)
        trace = sim.run()
        assert trace.makespan == pytest.approx(0.0)

    def test_link_serializes_messages(self):
        sim = two_node_sim()
        sim.transfer("x1", 0, 1, n_bytes=1.25e8)
        sim.transfer("x2", 0, 1, n_bytes=1.25e8)
        trace = sim.run()
        assert trace.makespan >= 2.0

    def test_opposite_directions_are_independent(self):
        sim = two_node_sim()
        sim.transfer("x1", 0, 1, n_bytes=1.25e8)
        sim.transfer("x2", 1, 0, n_bytes=1.25e8)
        trace = sim.run()
        assert trace.makespan < 1.5  # full duplex

    def test_transfer_recorded(self):
        sim = two_node_sim()
        sim.transfer("x", 0, 1, n_bytes=1000)
        trace = sim.run()
        assert len(trace.transfers) == 1
        assert trace.bytes_transferred() == 1000

    def test_barrier_synchronizes(self):
        sim = two_node_sim()
        a = sim.task("a", 0, 1.0)
        b = sim.task("b", 1, 2.0)
        bar = sim.barrier("bar", 0, deps=[a, b])
        c = sim.task("c", 0, 1.0, deps=[bar])
        trace = sim.run()
        assert trace.makespan == pytest.approx(3.0)


class TestTopology:
    def test_paper_testbed_shape(self):
        spec = paper_testbed(2)
        assert spec.n_nodes == 2
        assert spec.total_cores() == 8
        assert spec.link.bandwidth_gbps == 1.0

    def test_invalid_testbed_size(self):
        with pytest.raises(ValueError):
            paper_testbed(3)

    def test_duplicate_node_names(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=(NodeSpec("a"), NodeSpec("a")))

    def test_node_index_lookup(self):
        spec = paper_testbed(2)
        assert spec.node_index("node1") == 1
        with pytest.raises(KeyError):
            spec.node_index("nope")

    def test_link_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_gbps=0.0)
        with pytest.raises(ValueError):
            LinkSpec(latency_s=-1.0)

    def test_transfer_time_monotone_in_bytes(self):
        link = LinkSpec()
        assert link.transfer_time(2000) > link.transfer_time(1000)
        with pytest.raises(ValueError):
            link.transfer_time(-1)

    def test_node_validation(self):
        with pytest.raises(ValueError):
            NodeSpec("n", n_cores=0)
        with pytest.raises(ValueError):
            NodeSpec("n", core_speed=0.0)


class TestTrace:
    def test_utilization_bounds(self):
        sim = two_node_sim()
        sim.task("t", 0, duration=2.0, cores=4)
        trace = sim.run()
        assert trace.utilization(0, 4) == pytest.approx(1.0)
        assert trace.utilization(1, 4) == 0.0

    def test_busy_core_timeline_integral(self):
        sim = two_node_sim()
        sim.task("a", 0, 2.0, cores=2)
        sim.task("b", 0, 1.0, cores=1)
        trace = sim.run()
        assert trace.node_busy_core_seconds(0) == pytest.approx(2 * 2 + 1 * 1)

    def test_summary_keys(self):
        sim = two_node_sim()
        sim.task("a", 0, 1.0)
        trace = sim.run()
        s = trace.summary()
        assert s["n_tasks"] == 1
        assert s["makespan_s"] == pytest.approx(1.0)
