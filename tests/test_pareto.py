"""Unit + property tests for the Pareto machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    crowding_distance,
    dominates,
    epsilon_filter,
    hypervolume_2d,
    hypervolume_mc,
    knee_point,
    non_dominated_mask,
    pareto_fronts,
    to_minimization,
)


class TestToMinimization:
    def test_flips_max_columns(self):
        pts = np.array([[1.0, 2.0]])
        out = to_minimization(pts, ["min", "max"])
        assert np.allclose(out, [[1.0, -2.0]])

    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            to_minimization(np.zeros((1, 2)), ["min", "up"])

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            to_minimization(np.zeros((1, 2)), ["min"])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            to_minimization(np.zeros(3), ["min", "min", "min"])


class TestDominates:
    def test_strict_dominance(self):
        assert dominates([1, 1], [2, 2])
        assert dominates([1, 2], [2, 2])
        assert not dominates([2, 2], [1, 1])

    def test_equal_points_do_not_dominate(self):
        assert not dominates([1, 1], [1, 1])

    def test_incomparable(self):
        assert not dominates([1, 3], [2, 2])
        assert not dominates([2, 2], [1, 3])


class TestNonDominatedMask:
    def test_simple_front(self):
        pts = np.array([[1, 4], [2, 3], [3, 2], [2, 5], [4, 4]])
        mask = non_dominated_mask(pts, ["min", "min"])
        assert list(mask) == [True, True, True, False, False]

    def test_max_direction(self):
        pts = np.array([[1.0, 1.0], [2.0, 2.0]])
        mask = non_dominated_mask(pts, ["max", "max"])
        assert list(mask) == [False, True]

    def test_mixed_directions(self):
        # maximize reward, minimize time
        pts = np.array([[-0.4, 60.0], [-0.9, 46.0], [-0.9, 70.0]])
        mask = non_dominated_mask(pts, ["max", "min"])
        assert list(mask) == [True, True, False]

    def test_duplicates_all_kept(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0]])
        mask = non_dominated_mask(pts, ["min", "min"])
        assert list(mask) == [True, True]

    def test_empty(self):
        assert non_dominated_mask(np.zeros((0, 2)), ["min", "min"]).size == 0

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(2, 20), st.just(3)),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_front_members_are_mutually_nondominated(self, pts):
        mask = non_dominated_mask(pts, ["min", "min", "min"])
        assert mask.any()  # a finite set always has a non-dominated point
        front = pts[mask]
        for i in range(len(front)):
            for j in range(len(front)):
                if i != j:
                    assert not dominates(front[i], front[j])

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(2, 15), st.just(2)),
            elements=st.floats(-50, 50, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_dominated_points_have_witness(self, pts):
        mask = non_dominated_mask(pts, ["min", "min"])
        for i in np.where(~mask)[0]:
            assert any(dominates(pts[j], pts[i]) for j in range(len(pts)))


class TestParetoFronts:
    def test_partition(self):
        pts = np.array([[1, 1], [2, 2], [3, 3]])
        fronts = pareto_fronts(pts, ["min", "min"])
        assert [list(f) for f in fronts] == [[0], [1], [2]]

    def test_every_point_in_exactly_one_front(self, rng):
        pts = rng.standard_normal((30, 3))
        fronts = pareto_fronts(pts, ["min", "min", "min"])
        flat = np.concatenate(fronts)
        assert sorted(flat) == list(range(30))

    def test_front_order_is_dominance_layers(self, rng):
        pts = rng.standard_normal((25, 2))
        fronts = pareto_fronts(pts, ["min", "min"])
        # no member of front k may dominate a member of front k-1
        for k in range(1, len(fronts)):
            for i in fronts[k]:
                for j in fronts[k - 1]:
                    assert not dominates(pts[i], pts[j])


class TestCrowdingDistance:
    def test_boundaries_infinite(self):
        pts = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        d = crowding_distance(pts)
        assert np.isinf(d[0]) and np.isinf(d[3])
        assert np.isfinite(d[1]) and np.isfinite(d[2])

    def test_small_fronts_all_infinite(self):
        assert np.all(np.isinf(crowding_distance(np.array([[1.0, 2.0]]))))
        assert np.all(np.isinf(crowding_distance(np.array([[1.0, 2.0], [2.0, 1.0]]))))

    def test_denser_region_smaller_distance(self):
        pts = np.array([[0.0, 10.0], [1.0, 9.0], [1.1, 8.9], [5.0, 5.0], [10.0, 0.0]])
        d = crowding_distance(pts)
        assert d[2] < d[3]


class TestHypervolume:
    def test_single_point_rectangle(self):
        hv = hypervolume_2d(np.array([[1.0, 1.0]]), reference=[3.0, 3.0])
        assert hv == pytest.approx(4.0)

    def test_two_point_staircase(self):
        pts = np.array([[1.0, 2.0], [2.0, 1.0]])
        hv = hypervolume_2d(pts, reference=[3.0, 3.0])
        # union of 2x1 and 1x2 rectangles, overlap 1x1 → 3
        assert hv == pytest.approx(3.0)

    def test_dominated_points_ignored(self):
        pts = np.array([[1.0, 1.0], [2.0, 2.0]])
        hv = hypervolume_2d(pts, reference=[3.0, 3.0])
        assert hv == pytest.approx(4.0)

    def test_points_beyond_reference_ignored(self):
        pts = np.array([[4.0, 4.0]])
        assert hypervolume_2d(pts, reference=[3.0, 3.0]) == 0.0

    def test_max_directions(self):
        pts = np.array([[2.0, 2.0]])
        hv = hypervolume_2d(pts, reference=[0.0, 0.0], directions=["max", "max"])
        assert hv == pytest.approx(4.0)

    def test_monte_carlo_matches_exact_2d(self, rng):
        pts = rng.uniform(0, 2, size=(6, 2))
        exact = hypervolume_2d(pts, reference=[3.0, 3.0])
        mc = hypervolume_mc(pts, [3.0, 3.0], ["min", "min"], n_samples=60_000, seed=1)
        assert mc == pytest.approx(exact, rel=0.05)

    def test_monte_carlo_3d_bounds(self, rng):
        pts = rng.uniform(0, 1, size=(5, 3))
        hv = hypervolume_mc(pts, [2.0, 2.0, 2.0], ["min", "min", "min"], seed=0)
        assert 0.0 < hv <= 8.0

    def test_hv_monotone_under_added_point(self, rng):
        pts = rng.uniform(0, 2, size=(4, 2))
        hv1 = hypervolume_2d(pts, reference=[3.0, 3.0])
        better = np.vstack([pts, [[0.1, 0.1]]])
        hv2 = hypervolume_2d(better, reference=[3.0, 3.0])
        assert hv2 >= hv1


class TestKneePoint:
    def test_obvious_knee(self):
        # an L-shaped front: the corner is the knee
        pts = np.array([[0.0, 10.0], [1.0, 1.0], [10.0, 0.0]])
        assert knee_point(pts, ["min", "min"]) == 1

    def test_single_point(self):
        assert knee_point(np.array([[1.0, 2.0]]), ["min", "min"]) == 0

    def test_returns_front_member(self, rng):
        pts = rng.standard_normal((20, 2))
        k = knee_point(pts, ["min", "min"])
        mask = non_dominated_mask(pts, ["min", "min"])
        assert mask[k]


class TestEpsilonFilter:
    def test_keeps_spread_points(self):
        pts = np.array([[0.0, 1.0], [0.01, 0.99], [1.0, 0.0]])
        kept = epsilon_filter(pts, ["min", "min"], epsilon=0.1)
        assert len(kept) == 2

    def test_zero_epsilon_keeps_front(self, rng):
        pts = rng.uniform(size=(10, 2))
        kept = epsilon_filter(pts, ["min", "min"], epsilon=0.0)
        assert len(kept) == non_dominated_mask(pts, ["min", "min"]).sum()

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            epsilon_filter(np.zeros((2, 2)), ["min", "min"], epsilon=-1.0)
