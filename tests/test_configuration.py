"""Tests for Configuration objects."""

from __future__ import annotations

import pytest

from repro.core import Categorical, Configuration, ParameterSpace


class TestConfiguration:
    def test_mapping_interface(self):
        c = Configuration({"a": 1, "b": "x"})
        assert c["a"] == 1
        assert len(c) == 2
        assert set(c) == {"a", "b"}
        assert c.as_dict() == {"a": 1, "b": "x"}

    def test_hash_and_equality_ignore_order(self):
        a = Configuration({"x": 1, "y": 2})
        b = Configuration({"y": 2, "x": 1})
        assert a == b
        assert hash(a) == hash(b)
        assert a.key() == b.key()

    def test_equality_with_plain_dict(self):
        assert Configuration({"x": 1}) == {"x": 1}

    def test_trial_id_not_part_of_identity(self):
        a = Configuration({"x": 1}, trial_id=1)
        b = Configuration({"x": 1}, trial_id=2)
        assert a == b
        assert a.key() == b.key()

    def test_with_trial_id(self):
        a = Configuration({"x": 1})
        b = a.with_trial_id(7)
        assert b.trial_id == 7
        assert a.trial_id is None

    def test_describe_includes_id(self):
        c = Configuration({"x": 1}, trial_id=4)
        assert c.describe().startswith("#4 ")

    def test_split_by_kind(self):
        space = ParameterSpace(
            [
                Categorical("rk", [3, 5], kind="environment"),
                Categorical("fw", ["a"], kind="algorithm"),
                Categorical("nodes", [1, 2], kind="system"),
            ]
        )
        c = Configuration({"rk": 3, "fw": "a", "nodes": 2})
        split = c.split_by_kind(space)
        assert split["environment"] == {"rk": 3}
        assert split["algorithm"] == {"fw": "a"}
        assert split["system"] == {"nodes": 2}

    def test_usable_as_dict_key(self):
        d = {Configuration({"x": 1}): "one"}
        assert d[Configuration({"x": 1})] == "one"
