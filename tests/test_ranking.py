"""Tests for the ranking methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Configuration,
    LexicographicRanking,
    Metric,
    MetricSet,
    ParetoFrontRanking,
    ResultsTable,
    SortedTableRanking,
    TrialResult,
    TrialStatus,
    WeightedSumRanking,
)


def make_table(rows):
    """rows: list of (trial_id, reward, time, power)."""
    metrics = MetricSet(
        [
            Metric(name="reward", direction="max"),
            Metric(name="time", direction="min"),
            Metric(name="power", direction="min"),
        ]
    )
    table = ResultsTable(metrics)
    for trial_id, reward, time_, power in rows:
        table.add(
            TrialResult(
                config=Configuration({"id": trial_id}, trial_id=trial_id),
                objectives={"reward": reward, "time": time_, "power": power},
            )
        )
    return table


PAPERISH = [
    (2, -0.9, 46.0, 187.0),
    (5, -0.9, 50.0, 202.0),
    (7, -0.48, 86.0, 211.0),
    (11, -0.84, 48.0, 118.0),
    (16, -0.30, 67.0, 164.0),
    (18, -3.2, 259.0, 391.0),
]


class TestParetoFrontRanking:
    def test_front_members(self):
        table = make_table(PAPERISH)
        ranking = ParetoFrontRanking(["reward", "time"]).rank(table)
        front = set(ranking.front_ids())
        assert 2 in front       # fastest
        assert 16 in front      # best reward
        assert 18 not in front  # dominated everywhere

    def test_orders_by_front_then_crowding(self):
        table = make_table(PAPERISH)
        ranking = ParetoFrontRanking(["reward", "time"]).rank(table)
        fronts = [ranking.annotations[t.trial_id]["front"] for t in ranking.ordered]
        assert fronts == sorted(fronts)

    def test_knee_annotated_once(self):
        table = make_table(PAPERISH)
        ranking = ParetoFrontRanking(["reward", "time"]).rank(table)
        knees = [a for a in ranking.annotations.values() if a.get("knee")]
        assert len(knees) == 1

    def test_needs_two_metrics(self):
        with pytest.raises(ValueError):
            ParetoFrontRanking(["reward"])

    def test_three_metric_front(self):
        table = make_table(PAPERISH)
        ranking = ParetoFrontRanking(["reward", "time", "power"]).rank(table)
        # more axes → weakly larger front
        front2 = ParetoFrontRanking(["reward", "time"]).rank(table).front_ids()
        assert set(front2) <= set(ranking.front_ids())

    def test_front_mask_matches_front_ids(self):
        table = make_table(PAPERISH)
        pr = ParetoFrontRanking(["reward", "power"])
        mask = pr.front_mask(table)
        ids = [t.trial_id for t, m in zip(table.completed(), mask) if m]
        assert sorted(ids) == pr.rank(table).front_ids()

    def test_failed_trials_excluded(self):
        table = make_table(PAPERISH)
        table.add(
            TrialResult(
                config=Configuration({"id": 99}, trial_id=99),
                objectives={},
                status=TrialStatus.FAILED,
            )
        )
        ranking = ParetoFrontRanking(["reward", "time"]).rank(table)
        assert all(t.trial_id != 99 for t in ranking.ordered)

    def test_empty_table_raises(self):
        table = make_table([])
        with pytest.raises(ValueError):
            ParetoFrontRanking(["reward", "time"]).rank(table)


class TestSortedTableRanking:
    def test_max_metric_descending(self):
        table = make_table(PAPERISH)
        ranking = SortedTableRanking("reward").rank(table)
        rewards = [t.objectives["reward"] for t in ranking.ordered]
        assert rewards == sorted(rewards, reverse=True)
        assert ranking.best.trial_id == 16

    def test_min_metric_ascending(self):
        table = make_table(PAPERISH)
        ranking = SortedTableRanking("time").rank(table)
        assert ranking.best.trial_id == 2

    def test_position(self):
        table = make_table(PAPERISH)
        ranking = SortedTableRanking("power").rank(table)
        assert ranking.position(11) == 0
        with pytest.raises(KeyError):
            ranking.position(12345)


class TestWeightedSumRanking:
    def test_single_weight_equals_sorted(self):
        table = make_table(PAPERISH)
        ws = WeightedSumRanking({"reward": 1.0}).rank(table)
        srt = SortedTableRanking("reward").rank(table)
        assert [t.trial_id for t in ws.ordered] == [t.trial_id for t in srt.ordered]

    def test_balanced_weights_pick_compromise(self):
        table = make_table(PAPERISH)
        ranking = WeightedSumRanking({"reward": 1.0, "time": 1.0, "power": 1.0}).rank(table)
        assert ranking.best.trial_id in (2, 11, 16)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            WeightedSumRanking({})
        with pytest.raises(ValueError):
            WeightedSumRanking({"a": -1.0})
        with pytest.raises(ValueError):
            WeightedSumRanking({"a": 0.0})

    def test_scores_annotated(self):
        table = make_table(PAPERISH)
        ranking = WeightedSumRanking({"reward": 1.0, "time": 1.0}).rank(table)
        scores = [ranking.annotations[t.trial_id]["score"] for t in ranking.ordered]
        assert scores == sorted(scores)


class TestLexicographicRanking:
    def test_primary_metric_dominates(self):
        table = make_table(PAPERISH)
        ranking = LexicographicRanking(["time", "reward"]).rank(table)
        assert ranking.best.trial_id == 2

    def test_tolerance_defers_to_secondary(self):
        table = make_table(PAPERISH)
        # 10-minute time bands: 46 and 50 tie; reward then prefers... both -0.9
        # use power as tiebreak
        ranking = LexicographicRanking(["time", "power"], tolerances={"time": 600.0}).rank(
            table
        )
        # huge band: everything ties on time except extremes; power decides
        assert ranking.best.trial_id == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            LexicographicRanking([])
