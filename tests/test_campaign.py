"""Tests for the campaign orchestration, with a synthetic case study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Campaign,
    Categorical,
    Configuration,
    GridSearch,
    MedianPruner,
    Metric,
    MetricSet,
    ParameterSpace,
    ParetoFrontRanking,
    RandomSearch,
    SortedTableRanking,
    TrialStatus,
)


class SyntheticCaseStudy:
    """Deterministic toy 'learning task': quality and cost follow directly
    from the configuration, with a progress curve for pruning tests."""

    def __init__(self, fail_on=None, curve_points=5):
        self.fail_on = fail_on or set()
        self.curve_points = curve_points
        self.evaluated: list[Configuration] = []

    def evaluate(self, config, seed, progress=None):
        self.evaluated.append(config)
        if config["quality"] in self.fail_on:
            raise RuntimeError("boom")
        quality = float(config["quality"])
        cost = float(config["cost"])
        if progress is not None:
            for step in range(1, self.curve_points + 1):
                # low-quality configs look bad early → good pruning target
                value = quality * step / self.curve_points
                if progress(step, value):
                    return {"reward": value, "time": cost * step / self.curve_points}
        return {"reward": quality, "time": cost}


def space():
    return ParameterSpace(
        [Categorical("quality", [1, 2, 3, 4]), Categorical("cost", [10, 20])]
    )


def metrics():
    return MetricSet(
        [Metric(name="reward", direction="max"), Metric(name="time", direction="min")]
    )


class TestCampaignRun:
    def test_runs_all_trials(self):
        study = SyntheticCaseStudy()
        campaign = Campaign(study, space(), GridSearch(space()), metrics())
        report = campaign.run()
        assert len(report.table) == 8
        assert report.meta["n_completed"] == 8
        assert len(study.evaluated) == 8

    def test_default_rankers_are_metric_pairs(self):
        campaign = Campaign(SyntheticCaseStudy(), space(), GridSearch(space()), metrics())
        report = campaign.run()
        assert list(report.rankings) == ["pareto:reward+time"]

    def test_custom_rankers(self):
        campaign = Campaign(
            SyntheticCaseStudy(),
            space(),
            GridSearch(space()),
            metrics(),
            rankers=[SortedTableRanking("reward"), ParetoFrontRanking(["reward", "time"])],
        )
        report = campaign.run()
        assert set(report.rankings) == {"sorted:reward", "pareto:reward+time"}
        assert report.ranking("sorted:reward").best.objectives["reward"] == 4.0

    def test_front_is_correct(self):
        campaign = Campaign(SyntheticCaseStudy(), space(), GridSearch(space()), metrics())
        report = campaign.run()
        front_trials = report.ranking("pareto:reward+time").front()
        values = {(t.objectives["reward"], t.objectives["time"]) for t in front_trials}
        assert values == {(4.0, 10.0)}  # single dominating point

    def test_failed_trials_recorded_not_raised(self):
        study = SyntheticCaseStudy(fail_on={2})
        campaign = Campaign(study, space(), GridSearch(space()), metrics())
        report = campaign.run()
        failed = [t for t in report.table if t.status == TrialStatus.FAILED]
        assert len(failed) == 2  # quality=2 at both costs
        assert "boom" in failed[0].extras["error"]
        assert report.meta["n_completed"] == 6

    def test_raise_on_error_mode(self):
        study = SyntheticCaseStudy(fail_on={1})
        campaign = Campaign(
            study, space(), GridSearch(space()), metrics(), raise_on_error=True
        )
        with pytest.raises(RuntimeError):
            campaign.run()

    def test_progress_callback_invoked(self):
        seen = []
        campaign = Campaign(SyntheticCaseStudy(), space(), GridSearch(space()), metrics())
        campaign.run(progress=lambda trial, n: seen.append((trial.trial_id, n)))
        assert len(seen) == 8
        assert seen[-1][1] == 8

    def test_invalid_configuration_from_explorer_raises(self):
        class BadExplorer(RandomSearch):
            def ask(self):
                return Configuration({"quality": 99, "cost": 10}, trial_id=1)

        campaign = Campaign(
            SyntheticCaseStudy(), space(), BadExplorer(space(), 1), metrics(),
            raise_on_error=True,
        )
        with pytest.raises(ValueError):
            campaign.run()

    def test_case_study_protocol_enforced(self):
        with pytest.raises(TypeError):
            Campaign(object(), space(), GridSearch(space()), metrics())

    def test_report_render_smoke(self):
        campaign = Campaign(SyntheticCaseStudy(), space(), GridSearch(space()), metrics())
        text = campaign.run().render()
        assert "Campaign results" in text
        assert "pareto:reward+time" in text
        assert "+-" in text  # scatter frame

    def test_fronts_helper(self):
        campaign = Campaign(SyntheticCaseStudy(), space(), GridSearch(space()), metrics())
        report = campaign.run()
        fronts = report.fronts()
        assert set(fronts) == {"pareto:reward+time"}

    def test_unknown_ranking_name(self):
        campaign = Campaign(SyntheticCaseStudy(), space(), GridSearch(space()), metrics())
        report = campaign.run()
        with pytest.raises(KeyError):
            report.ranking("nope")


class TestCampaignPruning:
    def test_median_pruner_stops_bad_trials(self):
        # run good configs first so the pruner has baselines, then bad ones
        order = [
            {"quality": 4, "cost": 10},
            {"quality": 4, "cost": 20},
            {"quality": 3, "cost": 10},
            {"quality": 3, "cost": 20},
            {"quality": 1, "cost": 10},
            {"quality": 1, "cost": 20},
        ]

        class FixedExplorer(RandomSearch):
            def __init__(self, space):
                super().__init__(space, n_trials=len(order))
                self._configs = [Configuration(v) for v in order]

            def ask(self):
                if self._asked >= len(self._configs):
                    return None
                return self._configs[self._asked].with_trial_id(self._next_id())

        study = SyntheticCaseStudy()
        campaign = Campaign(
            study,
            space(),
            FixedExplorer(space()),
            metrics(),
            pruner=MedianPruner(n_startup_trials=4),
        )
        report = campaign.run()
        statuses = {t.trial_id: t.status for t in report.table}
        assert statuses[5] == TrialStatus.PRUNED
        assert statuses[6] == TrialStatus.PRUNED
        assert statuses[1] == TrialStatus.COMPLETED
        # pruned trials are excluded from the fronts
        front = report.ranking("pareto:reward+time").front_ids()
        assert 5 not in front and 6 not in front

    def test_no_pruner_runs_everything(self):
        study = SyntheticCaseStudy()
        campaign = Campaign(study, space(), GridSearch(space()), metrics())
        report = campaign.run()
        assert all(t.status == TrialStatus.COMPLETED for t in report.table)
