"""Determinism matrix for the vectorized rollout path and the trial cache.

Two guarantees hold the whole performance story together:

* ``n_envs=1`` with ``vectorize=True`` is **byte-identical** to the
  historical single-env training path — same rewards, same virtual
  times, same learning curves — so vectorization is opt-in purely for
  speed;
* at ``n_envs>1`` a campaign's table fingerprint is a pure function of
  its seed: stable across the serial/thread/process executors and
  across cache-cold vs cache-warm runs.
"""

from __future__ import annotations

import pytest

from repro.core import RandomSearch
from repro.core.serialization import table_fingerprint
from repro.frameworks import TrainSpec, get_framework
from repro.obs import RingBufferSink, Telemetry
from repro.paper import Scale, airdrop_parameter_space, table1_campaign

STEPS = 900


def _spec(algorithm: str, n_nodes: int = 1, **overrides) -> TrainSpec:
    return TrainSpec(
        algorithm=algorithm,
        n_nodes=n_nodes,
        cores_per_node=2,
        seed=3,
        total_steps=STEPS,
        paper_steps=STEPS,
        **overrides,
    )


def _assert_results_equal(a, b) -> None:
    assert a.reward == b.reward
    assert a.eval_reward == b.eval_reward
    assert a.computation_time_s == b.computation_time_s
    assert a.energy_kj == b.energy_kj
    assert a.learning_curve == b.learning_curve
    assert a.diagnostics == b.diagnostics


@pytest.mark.parametrize("framework", ["rllib", "stable", "tfagents"])
@pytest.mark.parametrize("algorithm", ["ppo", "sac"])
def test_vectorized_n_envs_1_is_byte_identical_to_serial(framework, algorithm):
    fw = get_framework(framework)
    n_nodes = 2 if fw.supports_multi_node and algorithm == "ppo" else 1
    serial = fw.train(_spec(algorithm, n_nodes=n_nodes))
    vectorized = fw.train(_spec(algorithm, n_nodes=n_nodes, n_envs=1, vectorize=True))
    _assert_results_equal(serial, vectorized)


def test_vectorized_width_is_seed_deterministic():
    fw = get_framework("stable")
    first = fw.train(_spec("ppo", n_envs=4))
    second = fw.train(_spec("ppo", n_envs=4))
    _assert_results_equal(first, second)


def _campaign(n_envs: int, **kwargs):
    return table1_campaign(
        seed=5,
        scale=Scale(real_steps=400),
        explorer=RandomSearch(airdrop_parameter_space(), n_trials=3, seed=5),
        n_envs=n_envs,
        **kwargs,
    )


def test_vectorized_fingerprint_stable_across_executors():
    serial = _campaign(n_envs=4).run()
    fingerprint = table_fingerprint(serial.table)
    assert all(t.ok for t in serial.table)
    for executor in ("thread", "process"):
        report = _campaign(n_envs=4, executor=executor, max_workers=2).run()
        assert table_fingerprint(report.table) == fingerprint, executor


def test_cache_warm_run_is_byte_identical_and_step_free(tmp_path):
    cold = _campaign(n_envs=2, cache=tmp_path / "cache").run()
    assert cold.meta["n_cached"] == 0

    sink = RingBufferSink()
    telemetry = Telemetry(sink)
    warm = _campaign(n_envs=2, cache=tmp_path / "cache", telemetry=telemetry).run()
    assert warm.meta["n_cached"] == len(warm.table) == 3
    assert table_fingerprint(warm.table) == table_fingerprint(cold.table)
    # zero environment work: every trial came straight from the cache
    counters = telemetry.meters.snapshot().get("counters", {})
    assert counters.get("env_steps", 0) == 0
    assert counters.get("cache/hits") == 3
    assert len(sink.events("trial_cache_hit")) == 3
