"""Tests for the exploratory methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Categorical,
    Float,
    GridSearch,
    Integer,
    LatinHypercube,
    ParameterSpace,
    RandomSearch,
)


def finite_space() -> ParameterSpace:
    return ParameterSpace(
        [
            Categorical("a", [1, 2, 3]),
            Categorical("b", ["x", "y"]),
        ]
    )


def drain(explorer):
    out = []
    while True:
        c = explorer.ask()
        if c is None:
            return out
        out.append(c)


class TestRandomSearch:
    def test_respects_budget(self):
        ex = RandomSearch(finite_space(), n_trials=4, seed=0)
        assert len(drain(ex)) == 4

    def test_trial_ids_sequential(self):
        ex = RandomSearch(finite_space(), n_trials=3, seed=0)
        assert [c.trial_id for c in drain(ex)] == [1, 2, 3]

    def test_dedupe(self):
        ex = RandomSearch(finite_space(), n_trials=6, seed=0, dedupe=True)
        configs = drain(ex)
        assert len({c.key() for c in configs}) == 6  # space has exactly 6 points

    def test_without_dedupe_allows_repeats(self):
        ex = RandomSearch(finite_space(), n_trials=50, seed=0, dedupe=False)
        configs = drain(ex)
        assert len(configs) == 50
        assert len({c.key() for c in configs}) < 50

    def test_deterministic_with_seed(self):
        a = [c.as_dict() for c in drain(RandomSearch(finite_space(), 5, seed=9))]
        b = [c.as_dict() for c in drain(RandomSearch(finite_space(), 5, seed=9))]
        assert a == b

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            RandomSearch(finite_space(), n_trials=0)

    def test_constraints_respected(self):
        space = ParameterSpace(
            [Categorical("n", [1, 2]), Categorical("fw", ["r", "s"])],
            constraints=[lambda v: v["n"] == 1 or v["fw"] == "r"],
        )
        for c in drain(RandomSearch(space, 3, seed=1)):
            assert space.is_valid(c.as_dict())


class TestGridSearch:
    def test_covers_whole_grid(self):
        ex = GridSearch(finite_space())
        configs = drain(ex)
        assert len(configs) == 6
        assert len({c.key() for c in configs}) == 6

    def test_max_trials_caps(self):
        ex = GridSearch(finite_space(), max_trials=2)
        assert len(drain(ex)) == 2

    def test_constraint_filtered(self):
        space = ParameterSpace(
            [Categorical("n", [1, 2]), Categorical("fw", ["r", "s"])],
            constraints=[lambda v: v["n"] == 1 or v["fw"] == "r"],
        )
        assert len(drain(GridSearch(space))) == 3


class TestLatinHypercube:
    def test_budget(self):
        space = ParameterSpace([Float("x", 0, 1), Categorical("c", [1, 2])])
        assert len(drain(LatinHypercube(space, 8, seed=0))) == 8

    def test_stratification_on_float(self):
        space = ParameterSpace([Float("x", 0.0, 1.0)])
        configs = drain(LatinHypercube(space, 10, seed=0))
        values = sorted(c["x"] for c in configs)
        # exactly one sample per decile
        for i, v in enumerate(values):
            assert i / 10 <= v <= (i + 1) / 10

    def test_categorical_balanced(self):
        space = ParameterSpace([Categorical("c", ["a", "b"])])
        configs = drain(LatinHypercube(space, 10, seed=0))
        counts = {"a": 0, "b": 0}
        for c in configs:
            counts[c["c"]] += 1
        assert counts == {"a": 5, "b": 5}

    def test_integer_lattice_covers_range(self):
        space = ParameterSpace([Integer("n", 0, 9)])
        configs = drain(LatinHypercube(space, 10, seed=0))
        assert {c["n"] for c in configs} == set(range(10))

    def test_constraint_repair(self):
        space = ParameterSpace(
            [Categorical("n", [1, 2]), Categorical("fw", ["r", "s"])],
            constraints=[lambda v: v["n"] == 1 or v["fw"] == "r"],
        )
        for c in drain(LatinHypercube(space, 12, seed=3)):
            assert space.is_valid(c.as_dict())

    def test_log_float_stratification(self):
        space = ParameterSpace([Float("lr", 1e-4, 1e0, log=True)])
        configs = drain(LatinHypercube(space, 8, seed=0))
        values = [c["lr"] for c in configs]
        assert min(values) < 1e-3  # strata cover the low decades
        assert max(values) > 1e-1
