"""Tests for TrialResult / ResultsTable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Categorical,
    Configuration,
    Metric,
    MetricSet,
    ParameterSpace,
    ResultsTable,
    TrialResult,
    TrialStatus,
)


def metrics() -> MetricSet:
    return MetricSet(
        [Metric(name="reward", direction="max"), Metric(name="time", direction="min")]
    )


def trial(i, reward, time_, status=TrialStatus.COMPLETED):
    return TrialResult(
        config=Configuration({"rk": 3, "fw": "stable"}, trial_id=i),
        objectives={"reward": reward, "time": time_} if status == TrialStatus.COMPLETED else {},
        status=status,
    )


class TestTrialResult:
    def test_objective_vector_order(self):
        t = trial(1, -0.5, 60.0)
        assert np.allclose(t.objective_vector(metrics()), [-0.5, 60.0])

    def test_ok_flag(self):
        assert trial(1, 0, 0).ok
        assert not trial(1, 0, 0, status=TrialStatus.FAILED).ok
        assert not trial(1, 0, 0, status=TrialStatus.PRUNED).ok

    def test_describe(self):
        text = trial(3, -0.5, 60.0).describe(metrics())
        assert "#3" in text and "reward" in text


class TestResultsTable:
    def make(self):
        table = ResultsTable(metrics())
        table.add(trial(1, -0.5, 60.0))
        table.add(trial(2, -0.3, 80.0))
        table.add(trial(3, 0, 0, status=TrialStatus.FAILED))
        return table

    def test_len_iter_getitem(self):
        table = self.make()
        assert len(table) == 3
        assert table[0].trial_id == 1
        assert [t.trial_id for t in table] == [1, 2, 3]

    def test_completed_filters(self):
        assert len(self.make().completed()) == 2

    def test_by_trial_id(self):
        table = self.make()
        assert table.by_trial_id(2).objectives["reward"] == -0.3
        with pytest.raises(KeyError):
            table.by_trial_id(42)

    def test_filter(self):
        table = self.make()
        fast = table.filter(lambda t: t.ok and t.objectives["time"] < 70)
        assert [t.trial_id for t in fast] == [1]

    def test_objective_matrix(self):
        matrix, trials = self.make().objective_matrix()
        assert matrix.shape == (2, 2)
        assert [t.trial_id for t in trials] == [1, 2]

    def test_objective_matrix_empty(self):
        table = ResultsTable(metrics())
        matrix, trials = table.objective_matrix()
        assert matrix.shape == (0, 2)
        assert trials == []

    def test_best(self):
        table = self.make()
        assert table.best("reward").trial_id == 2
        assert table.best("time").trial_id == 1

    def test_best_empty_raises(self):
        table = ResultsTable(metrics())
        with pytest.raises(ValueError):
            table.best("reward")

    def test_markdown_export(self):
        md = self.make().to_markdown()
        lines = md.splitlines()
        assert lines[0].startswith("| id |")
        assert len(lines) == 2 + 3  # header, separator, 3 rows
        assert "failed" in md

    def test_csv_export(self):
        csv_text = self.make().to_csv()
        rows = csv_text.strip().splitlines()
        assert rows[0].split(",")[0] == "id"
        assert len(rows) == 4

    def test_space_orders_columns(self):
        space = ParameterSpace([Categorical("fw", ["stable"]), Categorical("rk", [3])])
        table = ResultsTable(metrics(), space)
        table.add(trial(1, -0.5, 60.0))
        header = table.to_csv().splitlines()[0]
        assert header == "id,fw,rk,reward,time,status"
