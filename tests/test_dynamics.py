"""Tests for the parafoil dynamics model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.airdrop import (
    DOPRI5,
    ParafoilParams,
    make_rhs,
    parafoil_rhs,
    steady_bank,
    trim_glide_ratio,
    turn_radius,
)
from repro.airdrop.dynamics import IOMEGA, IPHI, IPSI, IVH, IVZ, IX, IY, IZ, STATE_DIM


def trim_state(params: ParafoilParams, z: float = 500.0) -> np.ndarray:
    s = np.zeros(STATE_DIM)
    s[IZ] = z
    s[IVH] = params.v_trim
    s[IVZ] = params.vz_trim
    return s


class TestParams:
    def test_defaults_valid(self):
        p = ParafoilParams()
        assert trim_glide_ratio(p) == pytest.approx(2.0)
        assert turn_radius(p) == pytest.approx(10.0 / 0.6)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ParafoilParams(v_trim=-1.0)
        with pytest.raises(ValueError):
            ParafoilParams(omega_max=0.0)
        with pytest.raises(ValueError):
            ParafoilParams(roll_omega0=-2.0)


class TestSteadyBank:
    def test_zero_turn_zero_bank(self):
        assert steady_bank(10.0, 0.0) == 0.0

    def test_sign_follows_turn_direction(self):
        assert steady_bank(10.0, 0.5) > 0
        assert steady_bank(10.0, -0.5) < 0

    def test_magnitude(self):
        # atan(10 * 0.6 / 9.81) ≈ 0.549
        assert steady_bank(10.0, 0.6) == pytest.approx(np.arctan(6.0 / 9.81))


class TestRHS:
    def test_straight_trim_flight_is_equilibrium(self):
        p = ParafoilParams()
        s = trim_state(p)
        d = parafoil_rhs(0.0, s, 0.0, np.zeros(2), p)
        # velocities/rates do not change at trim
        assert np.allclose(d[[IOMEGA + 1, IVH, IVZ, IPHI, IPHI + 1]], 0.0, atol=1e-12)
        # kinematics: moving forward (psi=0 → +x), descending
        assert d[IX] == pytest.approx(p.v_trim)
        assert d[IY] == pytest.approx(0.0)
        assert d[IZ] == pytest.approx(-p.vz_trim)

    def test_heading_rotates_velocity(self):
        p = ParafoilParams()
        s = trim_state(p)
        s[IPSI] = np.pi / 2
        d = parafoil_rhs(0.0, s, 0.0, np.zeros(2), p)
        assert d[IX] == pytest.approx(0.0, abs=1e-12)
        assert d[IY] == pytest.approx(p.v_trim)

    def test_wind_adds_drift(self):
        p = ParafoilParams()
        s = trim_state(p)
        d = parafoil_rhs(0.0, s, 0.0, np.array([1.5, -2.0]), p)
        assert d[IX] == pytest.approx(p.v_trim + 1.5)
        assert d[IY] == pytest.approx(-2.0)

    def test_steering_commands_turn(self):
        p = ParafoilParams()
        s = trim_state(p)
        d = parafoil_rhs(0.0, s, 1.0, np.zeros(2), p)
        assert d[IOMEGA] > 0  # turn rate ramps toward omega_max
        d = parafoil_rhs(0.0, s, -1.0, np.zeros(2), p)
        assert d[IOMEGA] < 0

    def test_turn_excites_roll(self):
        p = ParafoilParams()
        s = trim_state(p)
        s[IOMEGA] = 0.5  # established turn, but phi still 0
        d = parafoil_rhs(0.0, s, 1.0, np.zeros(2), p)
        assert d[IPHI + 1] > 0  # roll accelerates toward the bank angle
        # wait: IP = IPHI + 1
        assert d[IPHI] == s[IPHI + 1]

    def test_bank_increases_sink(self):
        p = ParafoilParams()
        s = trim_state(p)
        s[IPHI] = 0.5
        d = parafoil_rhs(0.0, s, 0.0, np.zeros(2), p)
        assert d[IVZ] > 0      # sink rate grows above trim
        assert d[IVH] < 0      # airspeed bleeds

    def test_bank_causes_sideslip(self):
        p = ParafoilParams()
        s = trim_state(p)
        s[IPHI] = 0.4  # banked right at psi=0 → slip in +y
        d = parafoil_rhs(0.0, s, 0.0, np.zeros(2), p)
        assert d[IY] > 0

    def test_make_rhs_clips_control(self):
        p = ParafoilParams()
        s = trim_state(p)
        rhs_big = make_rhs(5.0, np.zeros(2), p)
        rhs_one = make_rhs(1.0, np.zeros(2), p)
        assert np.allclose(rhs_big(0.0, s), rhs_one(0.0, s))


class TestClosedLoopBehaviour:
    def _fly(self, u_fn, T=60, h=0.25, params=None):
        p = params or ParafoilParams()
        s = trim_state(p, z=1000.0)
        t = 0.0
        for k in range(int(T / h)):
            rhs = make_rhs(u_fn(k * h), np.zeros(2), p)
            s = DOPRI5.step(rhs, t, s, h)
            t += h
        return s, p

    def test_straight_flight_glide_ratio(self):
        s, p = self._fly(lambda t: 0.0, T=40)
        horizontal = np.hypot(s[IX], s[IY])
        descent = 1000.0 - s[IZ]
        assert horizontal / descent == pytest.approx(trim_glide_ratio(p), rel=0.05)

    def test_full_deflection_converges_to_circle(self):
        s, p = self._fly(lambda t: 1.0, T=60)
        # steady turn rate below commanded max because of quadratic drag
        assert 0.2 < s[IOMEGA] <= p.omega_max
        # bank settles near the coordinated angle for that turn rate
        assert abs(s[IPHI] - steady_bank(s[IVH], s[IOMEGA])) < 0.15

    def test_turning_sinks_faster_than_straight(self):
        straight, p = self._fly(lambda t: 0.0, T=30)
        turning, _ = self._fly(lambda t: 1.0, T=30)
        assert turning[IZ] < straight[IZ]

    def test_dynamics_stay_finite_under_bang_bang(self):
        s, _ = self._fly(lambda t: 1.0 if int(t) % 2 == 0 else -1.0, T=60)
        assert np.all(np.isfinite(s))
        assert abs(s[IPHI]) < 1.5  # roll saturates, never diverges
