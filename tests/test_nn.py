"""Tests for the manual-backprop network stack, incl. gradient checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl import MLP, Dense, Parameter, ReLU, Tanh, clip_grad_norm, orthogonal_init
from repro.rl.nn import global_grad_norm


def numeric_grad(fn, array, eps=1e-6):
    grad = np.zeros_like(array)
    flat = array.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        up = fn()
        flat[i] = old - eps
        down = fn()
        flat[i] = old
        gflat[i] = (up - down) / (2 * eps)
    return grad


class TestParameter:
    def test_contiguous_storage(self, rng):
        p = Parameter("w", orthogonal_init((3, 5), 1.0, rng))
        assert p.value.flags["C_CONTIGUOUS"]

    def test_zero_grad(self):
        p = Parameter("w", np.ones((2, 2)))
        p.grad += 3.0
        p.zero_grad()
        assert np.all(p.grad == 0.0)


class TestOrthogonalInit:
    def test_orthogonal_columns(self, rng):
        w = orthogonal_init((8, 4), 1.0, rng)
        gram = w.T @ w
        assert np.allclose(gram, np.eye(4), atol=1e-10)

    def test_gain_scaling(self, rng):
        w = orthogonal_init((6, 6), 2.0, rng)
        assert np.allclose(w @ w.T, 4.0 * np.eye(6), atol=1e-10)

    def test_wide_matrices(self, rng):
        w = orthogonal_init((3, 7), 1.0, rng)
        assert np.allclose(w @ w.T, np.eye(3), atol=1e-10)


class TestLayers:
    def test_dense_forward(self, rng):
        layer = Dense(3, 2, rng)
        x = rng.standard_normal((4, 3))
        y = layer.forward(x)
        assert y.shape == (4, 2)
        assert np.allclose(y, x @ layer.w.value + layer.b.value)

    def test_dense_backward_before_forward_raises(self, rng):
        layer = Dense(3, 2, rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((4, 2)))

    def test_relu_masks_negative(self):
        layer = ReLU()
        x = np.array([[-1.0, 2.0]])
        assert np.allclose(layer.forward(x), [[0.0, 2.0]])
        assert np.allclose(layer.backward(np.ones((1, 2))), [[0.0, 1.0]])

    def test_tanh_gradient(self):
        layer = Tanh()
        x = np.array([[0.5]])
        y = layer.forward(x)
        g = layer.backward(np.ones((1, 1)))
        assert np.allclose(g, 1 - y**2)


class TestMLP:
    def test_needs_two_sizes(self, rng):
        with pytest.raises(ValueError):
            MLP((4,), rng)

    def test_unknown_activation(self, rng):
        with pytest.raises(ValueError):
            MLP((4, 2), rng, activation="gelu")

    def test_forward_shape(self, rng):
        net = MLP((5, 16, 16, 2), rng)
        y = net.forward(rng.standard_normal((7, 5)))
        assert y.shape == (7, 2)

    def test_forward_promotes_1d_input(self, rng):
        net = MLP((5, 8, 2), rng)
        y = net.forward(rng.standard_normal(5))
        assert y.shape == (1, 2)

    @pytest.mark.parametrize("activation", ["tanh", "relu"])
    def test_param_gradients_match_finite_differences(self, rng, activation):
        net = MLP((4, 6, 3), rng, activation=activation)
        x = rng.standard_normal((5, 4))
        target = rng.standard_normal((5, 3))

        def loss():
            return 0.5 * np.sum((net.forward(x) - target) ** 2)

        y = net.forward(x)
        net.zero_grad()
        net.backward(y - target)
        for p in net.parameters():
            expected = numeric_grad(loss, p.value)
            assert np.allclose(p.grad, expected, atol=1e-5), p.name

    def test_input_gradients_match_finite_differences(self, rng):
        net = MLP((3, 8, 2), rng)
        x = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 2))
        y = net.forward(x)
        net.zero_grad()
        din = net.backward(y - target)

        def loss():
            return 0.5 * np.sum((net.forward(x) - target) ** 2)

        expected = numeric_grad(loss, x)
        assert np.allclose(din, expected, atol=1e-5)

    def test_gradients_accumulate(self, rng):
        net = MLP((2, 4, 1), rng)
        x = rng.standard_normal((3, 2))
        net.forward(x)
        net.backward(np.ones((3, 1)))
        g1 = net.parameters()[0].grad.copy()
        net.forward(x)
        net.backward(np.ones((3, 1)))
        assert np.allclose(net.parameters()[0].grad, 2 * g1)

    def test_state_dict_roundtrip(self, rng):
        a = MLP((3, 8, 2), rng)
        b = MLP((3, 8, 2), np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        x = rng.standard_normal((2, 3))
        assert np.allclose(a.forward(x), b.forward(x))

    def test_state_dict_shape_mismatch(self, rng):
        a = MLP((3, 8, 2), rng)
        state = a.state_dict()
        state[next(iter(state))] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_state_dict_missing_key(self, rng):
        a = MLP((3, 8, 2), rng)
        with pytest.raises(KeyError):
            a.load_state_dict({})

    def test_copy_from_positional(self, rng):
        a = MLP((3, 8, 2), rng, name="src")
        b = MLP((3, 8, 2), np.random.default_rng(1), name="dst")
        b.copy_from(a)
        x = rng.standard_normal((2, 3))
        assert np.allclose(a.forward(x), b.forward(x))

    def test_copy_from_mismatch_raises(self, rng):
        a = MLP((3, 8, 2), rng)
        b = MLP((3, 4, 2), rng)
        with pytest.raises(ValueError):
            b.copy_from(a)

    def test_polyak_interpolates(self, rng):
        a = MLP((2, 4, 1), rng)
        b = MLP((2, 4, 1), np.random.default_rng(7))
        before = b.parameters()[0].value.copy()
        target = a.parameters()[0].value
        b.polyak_from(a, tau=0.25)
        expected = 0.75 * before + 0.25 * target
        assert np.allclose(b.parameters()[0].value, expected)

    def test_polyak_tau_one_copies(self, rng):
        a = MLP((2, 4, 1), rng)
        b = MLP((2, 4, 1), np.random.default_rng(7))
        b.polyak_from(a, tau=1.0)
        x = rng.standard_normal((3, 2))
        assert np.allclose(a.forward(x), b.forward(x))

    def test_polyak_invalid_tau(self, rng):
        a = MLP((2, 4, 1), rng)
        with pytest.raises(ValueError):
            a.polyak_from(a, tau=1.5)

    def test_n_parameters(self, rng):
        net = MLP((3, 8, 2), rng)
        assert net.n_parameters() == 3 * 8 + 8 + 8 * 2 + 2

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_forward_shape_property(self, batch, out_dim):
        net = MLP((4, 8, out_dim), np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((batch, 4))
        assert net.forward(x).shape == (batch, out_dim)


class TestGradClipping:
    def test_clip_reduces_norm(self, rng):
        net = MLP((3, 4, 2), rng)
        for p in net.parameters():
            p.grad[...] = 10.0
        norm_before = global_grad_norm(net.parameters())
        returned = clip_grad_norm(net.parameters(), max_norm=1.0)
        assert returned == pytest.approx(norm_before)
        assert global_grad_norm(net.parameters()) == pytest.approx(1.0)

    def test_no_clip_when_small(self, rng):
        net = MLP((3, 4, 2), rng)
        for p in net.parameters():
            p.grad[...] = 1e-4
        before = [p.grad.copy() for p in net.parameters()]
        clip_grad_norm(net.parameters(), max_norm=10.0)
        for p, b in zip(net.parameters(), before):
            assert np.allclose(p.grad, b)
