"""AirdropVectorEnv: native batched stepping is bit-identical to N serial envs.

The contract under test is strict equality, not closeness: the batched
dynamics, integrators and environment bookkeeping must reproduce the
exact float64 stream of :class:`~repro.envs.SyncVectorEnv` wrapping N
independent :class:`~repro.airdrop.AirdropEnv` instances, so that
``n_envs>1`` changes wall-clock only, never measurements.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.airdrop import (
    AirdropEnv,
    AirdropVectorEnv,
    parafoil_rhs,
    parafoil_rhs_batch,
)
from repro.airdrop.dynamics import ParafoilParams
from repro.airdrop.integrators import get_integrator
from repro.envs import SyncVectorEnv, make_vec


def _reference_vec(n_envs: int, **kwargs):
    return SyncVectorEnv([lambda: AirdropEnv(**kwargs) for _ in range(n_envs)])


def _assert_infos_equal(a: dict, b: dict) -> None:
    assert set(a) == set(b), (sorted(a), sorted(b))
    for key in a:
        va, vb = a[key], b[key]
        if isinstance(va, np.ndarray):
            assert np.array_equal(va, vb, equal_nan=True), key
        elif isinstance(va, dict):
            _assert_infos_equal(va, vb)
        else:
            assert va == vb, (key, va, vb)


@pytest.mark.parametrize(
    "n_envs,kwargs",
    [
        (1, dict(rk_order=5)),
        (3, dict(rk_order=3, wind=True, gusts=True)),
        (4, dict(rk_order=8, wind=True)),
    ],
)
def test_lockstep_bit_identical_to_sync_vector(n_envs, kwargs):
    batched = AirdropVectorEnv(num_envs=n_envs, **kwargs)
    serial = _reference_vec(n_envs, **kwargs)

    obs_b, info_b = batched.reset(seed=7)
    obs_s, info_s = serial.reset(seed=7)
    assert np.array_equal(obs_b, obs_s)
    for i in range(n_envs):
        _assert_infos_equal(info_b[i], info_s[i])

    rng = np.random.default_rng(99)
    with np.errstate(all="ignore"):
        for _ in range(250):
            actions = rng.uniform(-1.0, 1.0, (n_envs, 1))
            ob, rb, tb, cb, ib = batched.step(actions)
            os_, rs, ts, cs, is_ = serial.step(actions)
            assert np.array_equal(ob, os_)
            assert np.array_equal(rb, rs)
            assert np.array_equal(tb, ts)
            assert np.array_equal(cb, cs)
            for i in range(n_envs):
                _assert_infos_equal(ib[i], is_[i])
    assert batched.stats.returns == serial.stats.returns
    assert batched.stats.lengths == serial.stats.lengths
    assert batched.stats.returns, "no episode ever finished — test too short"


def test_reset_seed_sequence_matches_scalar_fanout():
    a = AirdropVectorEnv(num_envs=3, rk_order=5)
    b = AirdropVectorEnv(num_envs=3, rk_order=5)
    obs_a, _ = a.reset(seed=11)
    obs_b, _ = b.reset(seed=[11, 12, 13])
    assert np.array_equal(obs_a, obs_b)
    with pytest.raises(ValueError):
        a.reset(seed=[1, 2])  # wrong length


def test_make_vec_prefers_native_vector_entry_point():
    venv = make_vec("Airdrop-v0", 2, rk_order=3)
    assert isinstance(venv, AirdropVectorEnv)
    assert venv.num_envs == 2
    obs, _ = venv.reset(seed=0)
    assert obs.shape == venv.observation_space.shape


def test_batched_rhs_matches_serial_rows(rng):
    params = ParafoilParams()
    states = rng.normal(size=(5, 9)) * np.array([100, 100, 400, 5, 5, 3, 1, 1, 0.2])
    states[:, 2] = np.abs(states[:, 2]) + 50.0
    u = rng.uniform(-1, 1, 5)
    wind = rng.normal(size=(5, 2))
    batched = parafoil_rhs_batch(0.0, states, u, wind, params)
    for i in range(5):
        row = parafoil_rhs(0.0, states[i], float(u[i]), wind[i], params)
        assert np.array_equal(batched[i], row)


@pytest.mark.parametrize("order", [3, 5, 8])
def test_batched_integrator_matches_serial_rows(order, rng):
    tableau = get_integrator(order)

    def rhs(t, y):
        return np.sin(y) - 0.1 * y

    ys = rng.normal(size=(4, 9))
    stepped = tableau.step(rhs, 0.0, ys, 0.05)
    assert stepped.shape == ys.shape
    for i in range(4):
        row = tableau.step(rhs, 0.0, ys[i], 0.05)
        assert np.array_equal(stepped[i], row)
