"""Tests for the Optuna-style Study facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MedianPruner, Study, TrialPruned


class TestStudyBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            Study(direction="down")
        with pytest.raises(ValueError):
            Study(sampler="cmaes")

    def test_minimize_quadratic(self):
        study = Study(direction="minimize", sampler="tpe", seed=0)
        study.optimize(lambda t: (t.suggest_float("x", -4, 4) - 1.0) ** 2, n_trials=40)
        assert study.best_value < 0.5
        assert abs(study.best_params["x"] - 1.0) < 1.0

    def test_maximize_direction(self):
        study = Study(direction="maximize", sampler="tpe", seed=0)
        study.optimize(lambda t: -(t.suggest_float("x", -4, 4)) ** 2, n_trials=30)
        assert study.best_value > -1.0

    def test_random_sampler(self):
        study = Study(direction="minimize", sampler="random", seed=1)
        study.optimize(lambda t: t.suggest_float("x", 0, 1), n_trials=20)
        assert len(study.trials) == 20
        assert 0 <= study.best_value <= 1

    def test_mixed_parameter_types(self):
        def objective(trial):
            x = trial.suggest_float("x", 0.0, 1.0)
            n = trial.suggest_int("n", 1, 10)
            algo = trial.suggest_categorical("algo", ["a", "b"])
            return x + n + (0 if algo == "a" else 5)

        study = Study(direction="minimize", sampler="tpe", seed=0)
        study.optimize(objective, n_trials=30)
        assert study.best_params["algo"] == "a"
        assert study.best_params["n"] <= 5

    def test_best_trial_empty_raises(self):
        study = Study()
        with pytest.raises(ValueError):
            study.best_trial

    def test_failed_trials_recorded(self):
        def objective(trial):
            x = trial.suggest_float("x", 0, 1)
            if x < 2:  # always
                raise RuntimeError("fail")
            return x

        study = Study(seed=0)
        study.optimize(objective, n_trials=5)
        assert all(t.state == "failed" for t in study.trials)
        assert study.completed_trials == []

    def test_new_parameter_after_discovery_rejected(self):
        calls = {"n": 0}

        def objective(trial):
            calls["n"] += 1
            trial.suggest_float("x", 0, 1)
            if calls["n"] > 1:
                trial.suggest_float("y", 0, 1)  # not in discovered space
            return 0.0

        study = Study(seed=0)
        study.optimize(objective, n_trials=3)
        # failure recorded, not raised
        assert any(t.state == "failed" for t in study.trials)


class TestStudyPruning:
    def test_report_and_should_prune(self):
        pruner = MedianPruner(n_startup_trials=1)

        def objective(trial):
            x = trial.suggest_float("x", 0, 1)
            for step in range(1, 4):
                trial.report(-x * step, step)  # higher is better
                if trial.should_prune(step):
                    raise TrialPruned
            return x

        study = Study(direction="minimize", sampler="random", seed=0, pruner=pruner)
        study.optimize(objective, n_trials=10)
        states = {t.state for t in study.trials}
        assert "complete" in states
        # at least one trial should have been pruned by the median rule
        assert "pruned" in states

    def test_pruned_trials_have_no_value(self):
        def objective(trial):
            trial.suggest_float("x", 0, 1)
            raise TrialPruned

        study = Study(seed=0)
        study.optimize(objective, n_trials=3)
        assert all(t.value is None and t.state == "pruned" for t in study.trials)

    def test_intermediate_values_stored(self):
        def objective(trial):
            trial.suggest_float("x", 0, 1)
            trial.report(1.0, 1)
            trial.report(2.0, 2)
            return 0.0

        study = Study(seed=0)
        study.optimize(objective, n_trials=2)
        assert study.trials[0].intermediate == {1: 1.0, 2: 2.0}
