"""Tests for JSON report serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import (
    Campaign,
    Categorical,
    Configuration,
    GridSearch,
    Metric,
    MetricSet,
    ParameterSpace,
    ParetoFrontRanking,
    ResultsTable,
    TrialResult,
    TrialStatus,
    dump_report,
    load_table,
    rank_loaded,
    table_from_dict,
    table_to_dict,
)


def sample_table() -> ResultsTable:
    metrics = MetricSet(
        [Metric(name="reward", direction="max"), Metric(name="time", direction="min", unit="s")]
    )
    table = ResultsTable(metrics)
    table.add(
        TrialResult(
            config=Configuration({"rk": np.int64(3), "fw": "stable"}, trial_id=1),
            objectives={"reward": -0.5, "time": 60.0},
            measurements={"reward": -0.5, "time": 60.0, "extra": 1.5},
            seed=7,
        )
    )
    table.add(
        TrialResult(
            config=Configuration({"rk": 8, "fw": "rllib"}, trial_id=2),
            objectives={},
            status=TrialStatus.FAILED,
        )
    )
    return table


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self):
        table = sample_table()
        payload = table_to_dict(table)
        # numpy ints must become JSON-safe
        json.dumps(payload)
        loaded = table_from_dict(payload)
        assert len(loaded) == 2
        t1 = loaded.by_trial_id(1)
        assert t1.objectives == {"reward": -0.5, "time": 60.0}
        assert t1.measurements["extra"] == 1.5
        assert t1.seed == 7
        assert t1.config["fw"] == "stable"
        t2 = loaded.by_trial_id(2)
        assert t2.status == TrialStatus.FAILED

    def test_metric_definitions_roundtrip(self):
        loaded = table_from_dict(table_to_dict(sample_table()))
        assert loaded.metrics["reward"].maximize
        assert loaded.metrics["time"].unit == "s"

    def test_version_check(self):
        payload = table_to_dict(sample_table())
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            table_from_dict(payload)

    def test_file_roundtrip(self, tmp_path):
        class TwoValueStudy:
            def evaluate(self, config, seed, progress=None):
                return {"loss": float(config["x"])}

        space = ParameterSpace([Categorical("x", [1, 2, 3])])
        campaign = Campaign(
            TwoValueStudy(),
            space,
            GridSearch(space),
            MetricSet([Metric(name="loss", direction="min")]),
        )
        report = campaign.run()
        path = tmp_path / "report.json"
        dump_report(report, str(path))

        loaded = load_table(str(path))
        assert len(loaded) == 3
        assert loaded.best("loss").config["x"] == 1

        raw = json.loads(path.read_text())
        assert "fronts" in raw and "meta" in raw

    def test_rank_loaded_rebuilds_rankings(self):
        table = sample_table()
        loaded = table_from_dict(table_to_dict(table))
        report = rank_loaded(loaded, [ParetoFrontRanking(["reward", "time"])])
        assert report.ranking("pareto:reward+time").best.trial_id == 1
        assert report.meta["source"] == "loaded"
