"""Tests for V-trace returns and the IMPALA-like back-end."""

from __future__ import annotations

import numpy as np
import pytest

import repro.airdrop  # noqa: F401
from repro.frameworks import ImpalaLike, TrainSpec, get_framework
from repro.rl import VTraceAgent, VTraceConfig, compute_gae, vtrace_returns


class TestVTraceReturns:
    def test_on_policy_reduces_to_gae_lambda_one(self):
        """With π == μ and no truncation active (ratios == 1 ≤ bars), the
        V-trace targets equal the λ=1 GAE returns."""
        rng = np.random.default_rng(0)
        T, N = 6, 3
        rewards = rng.standard_normal((T, N))
        values = rng.standard_normal((T, N))
        terms = np.zeros((T, N))
        terms[3, 1] = 1.0
        logp = rng.standard_normal((T, N))
        boot = rng.standard_normal(N)

        vs, pg = vtrace_returns(rewards, values, boot, logp, logp, terms, gamma=0.95)
        _, gae_ret = compute_gae(rewards, values, terms, boot, gamma=0.95, lam=1.0)
        assert np.allclose(vs, gae_ret)

    def test_rho_truncation_limits_correction(self):
        """A hugely off-policy action must not blow up the targets."""
        T, N = 4, 1
        rewards = np.ones((T, N))
        values = np.zeros((T, N))
        terms = np.zeros((T, N))
        behaviour = np.full((T, N), -10.0)   # very unlikely under mu
        target = np.zeros((T, N))            # likely under pi → ratio e^10
        vs, pg = vtrace_returns(
            rewards, values, np.zeros(N), behaviour, target, terms, gamma=1.0,
            rho_bar=1.0, c_bar=1.0,
        )
        capped, _ = vtrace_returns(
            rewards, values, np.zeros(N), target, target, terms, gamma=1.0
        )
        assert np.allclose(vs, capped)  # clipped at rho_bar/c_bar == on-policy

    def test_terminations_cut_bootstrap(self):
        rewards = np.array([[1.0]])
        values = np.array([[0.0]])
        terms = np.array([[1.0]])
        logp = np.zeros((1, 1))
        vs, pg = vtrace_returns(rewards, values, np.array([100.0]), logp, logp, terms)
        assert vs[0, 0] == pytest.approx(1.0)
        assert pg[0, 0] == pytest.approx(1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            vtrace_returns(
                np.zeros((3, 2)), np.zeros((2, 2)), np.zeros(2),
                np.zeros((3, 2)), np.zeros((3, 2)), np.zeros((3, 2)),
            )

    def test_zero_ratio_freezes_values(self):
        """ρ = 0 (infinitely off-policy, clipped below) leaves V unchanged."""
        T, N = 3, 1
        rewards = np.ones((T, N))
        values = np.full((T, N), 5.0)
        terms = np.zeros((T, N))
        behaviour = np.zeros((T, N))
        target = np.full((T, N), -50.0)  # ratio ~ e^-50 ≈ 0
        vs, pg = vtrace_returns(rewards, values, np.zeros(N), behaviour, target, terms)
        assert np.allclose(vs, values, atol=1e-10)
        assert np.allclose(pg, 0.0, atol=1e-10)


class TestVTraceAgent:
    def test_act_shapes(self):
        agent = VTraceAgent(5, 2, seed=0)
        out = agent.act(np.zeros((4, 5)))
        assert out["action"].shape == (4, 2)
        assert out["log_prob"].shape == (4,)

    def test_update_runs_and_reports(self):
        agent = VTraceAgent(3, 1, seed=0)
        rng = np.random.default_rng(0)
        T, N = 8, 4
        stats = agent.update(
            rng.standard_normal((T, N, 3)),
            rng.standard_normal((T, N, 1)),
            rng.standard_normal((T, N)),
            np.zeros((T, N)),
            rng.standard_normal((T, N)),
            rng.standard_normal((N, 3)),
        )
        for key in ("policy_loss", "value_loss", "entropy", "mean_is_ratio"):
            assert key in stats
        assert agent.n_updates == 1

    def test_learns_simple_objective(self):
        """Reward = -a²: the policy mean must shrink toward zero."""
        agent = VTraceAgent(2, 1, VTraceConfig(learning_rate=3e-3), seed=0)
        rng = np.random.default_rng(1)
        T, N = 16, 8
        for _ in range(60):
            obs = rng.standard_normal((T, N, 2))
            flat = obs.reshape(T * N, 2)
            out = agent.act(flat)
            actions = out["action"].reshape(T, N, 1)
            logp = out["log_prob"].reshape(T, N)
            rewards = -(actions[..., 0] ** 2)
            agent.update(obs, actions, rewards, np.zeros((T, N)), logp,
                         rng.standard_normal((N, 2)))
        test_actions = agent.act(rng.standard_normal((100, 2)), deterministic=True)["action"]
        assert np.mean(np.abs(test_actions)) < 0.15

    def test_policy_state_roundtrip(self):
        a = VTraceAgent(3, 1, seed=0)
        b = VTraceAgent(3, 1, seed=5)
        b.load_policy_state(a.policy_state())
        obs = np.random.default_rng(0).standard_normal((2, 3))
        assert np.allclose(
            a.act(obs, deterministic=True)["action"],
            b.act(obs, deterministic=True)["action"],
        )


class TestImpalaLike:
    def test_registered(self):
        assert isinstance(get_framework("impala"), ImpalaLike)

    def test_rejects_sac(self):
        fw = get_framework("impala")
        with pytest.raises(ValueError, match="V-trace"):
            fw.train(TrainSpec(algorithm="sac", total_steps=100))

    def test_trains_and_reports(self):
        fw = get_framework("impala")
        spec = TrainSpec(
            algorithm="ppo", n_nodes=1, cores_per_node=2,
            env_kwargs={"rk_order": 3}, seed=0, total_steps=1500,
            eval_episodes=2,
        )
        result = fw.train(spec)
        assert result.framework == "impala"
        assert np.isfinite(result.reward)
        assert result.computation_time_s > 0

    def test_pipelining_beats_rllib_wall_clock(self):
        """The async DAG must make IMPALA faster than synchronous RLlib at
        the same 2-node configuration."""
        spec = TrainSpec(
            algorithm="ppo", n_nodes=2, cores_per_node=4,
            env_kwargs={"rk_order": 5}, seed=0, total_steps=4000,
        )
        impala = get_framework("impala").train(spec)
        rllib = get_framework("rllib").train(spec)
        assert impala.computation_time_s < rllib.computation_time_s * 0.8

    def test_multi_node_ships_experience(self):
        fw = get_framework("impala")
        spec = TrainSpec(
            algorithm="ppo", n_nodes=2, cores_per_node=2,
            env_kwargs={"rk_order": 3}, seed=0, total_steps=1000,
            eval_episodes=1,
        )
        result = fw.train(spec)
        assert result.diagnostics["bytes_transferred"] > 0
