"""Campaign service tests: real sockets on ephemeral ports.

Covers the ``repro.serve`` package end to end:

* spec validation (typed 400s before any work is scheduled);
* bearer-token auth (401s, cross-tenant 404 indistinguishability);
* the queue's concurrency limit and round-robin tenant fairness,
  pinned down with an injected runner gated on ``threading.Event``;
* the JSONL trial stream's terminal record;
* graceful drain → "interrupted" checkpoint → restart resumes from the
  journal and replays committed trials instead of re-running them.

Everything binds ``127.0.0.1:0`` and reads the kernel-assigned port, so
tests run in parallel CI shards without port collisions.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

import pytest

from repro.exec import CampaignJournal
from repro.obs import MeterRegistry
from repro.serve import (
    OPEN_TENANT,
    CampaignServer,
    CampaignService,
    Job,
    JobQueue,
    SpecError,
    TokenAuth,
    tenant_label,
    validate_spec,
)

TOKEN_A = "alpha-secret"
TOKEN_B = "beta-secret"

# small-but-real campaign: 2 random-search trials at 60 env steps runs in
# a couple of seconds and still exercises the full executor/journal path
FAST_SPEC = {"explorer": "random", "trials": 2, "steps": 60, "cache": False}


# ------------------------------------------------------------------ helpers
def request(
    port: int,
    method: str,
    path: str,
    token: str | None = None,
    body: object = None,
):
    """One HTTP exchange; returns (status, decoded-JSON-or-raw-bytes)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    headers = {}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    payload = None
    if body is not None:
        payload = body if isinstance(body, bytes) else json.dumps(body).encode()
        headers["Content-Type"] = "application/json"
    try:
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        data = response.read()
    finally:
        conn.close()
    if (response.getheader("Content-Type") or "").startswith("application/json"):
        return response.status, json.loads(data)
    return response.status, data


def wait_for_state(port, token, job_id, states, timeout=90.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, snap = request(port, "GET", f"/campaigns/{job_id}", token)
        assert status == 200, snap
        if snap["state"] in states:
            return snap
        time.sleep(0.2)
    raise AssertionError(f"{job_id} never reached {states}: {snap}")


def wait_until(predicate, timeout=60.0, message="condition never held"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    raise AssertionError(message)


# ------------------------------------------------------------- validate_spec
class TestValidateSpec:
    def test_defaults_fill_every_key(self):
        spec = validate_spec({})
        assert spec["explorer"] == "table1"
        assert spec["steps"] == 200 and spec["cache"] is True
        assert spec["executor"] == "serial"

    def test_rejects_non_object(self):
        with pytest.raises(SpecError, match="JSON object"):
            validate_spec([1, 2, 3])

    def test_rejects_unknown_keys(self):
        with pytest.raises(SpecError, match="unknown spec key.*nproc"):
            validate_spec({"nproc": 4})

    def test_rejects_bool_masquerading_as_int(self):
        with pytest.raises(SpecError, match="'trials' must be an integer"):
            validate_spec({"trials": True})

    def test_rejects_out_of_bounds(self):
        with pytest.raises(SpecError, match="'trials' must be in"):
            validate_spec({"trials": 0})

    def test_rejects_remote_executor(self):
        with pytest.raises(SpecError, match="configured server-side"):
            validate_spec({"executor": "remote"})

    def test_rejects_bad_fault_plan(self):
        with pytest.raises(SpecError, match="bad 'fault_plan'"):
            validate_spec({"fault_plan": {"format_version": 999}})
        with pytest.raises(SpecError, match="bad 'fault_plan'"):
            validate_spec({"fault_plan": {"task_failures": {}}})  # no rate

    def test_normalizes_valid_fault_plan(self):
        plan = {"seed": 7, "task_failures": {"rate": 0.1}}
        spec = validate_spec({"fault_plan": plan, "retries": 2})
        assert spec["fault_plan"]["task_failures"]["rate"] == 0.1
        assert spec["fault_plan"]["seed"] == 7
        assert spec["retries"] == 2

    def test_trial_timeout_coerced_to_float(self):
        assert validate_spec({"trial_timeout": 30})["trial_timeout"] == 30.0
        with pytest.raises(SpecError, match="trial_timeout"):
            validate_spec({"trial_timeout": -1})


# --------------------------------------------------------------------- auth
class TestTokenAuth:
    def test_open_mode_admits_everyone_as_public(self):
        auth = TokenAuth()
        assert not auth.enabled
        assert auth.tenant_for(None) == OPEN_TENANT
        assert auth.tenant_for("Bearer whatever") == OPEN_TENANT

    def test_token_mode_maps_tokens_to_stable_tenants(self):
        auth = TokenAuth([TOKEN_A, TOKEN_B])
        assert auth.enabled and auth.n_tenants == 2
        tenant = auth.tenant_for(f"Bearer {TOKEN_A}")
        assert tenant == tenant_label(TOKEN_A)
        assert tenant != auth.tenant_for(f"Bearer {TOKEN_B}")

    @pytest.mark.parametrize(
        "header", [None, "Bearer wrong", TOKEN_A, "Basic abc", "Bearer"]
    )
    def test_token_mode_rejects_everything_else(self, header):
        assert TokenAuth([TOKEN_A]).tenant_for(header) is None


# ------------------------------------------------------------------- queue
class TestJobQueue:
    def make_job(self, tenant, job_id):
        return Job(id=job_id, tenant=tenant, spec={})

    def test_concurrency_limit_queues_in_round_robin_order(self):
        """max_concurrent=1 → strictly serial, tenants served fairly."""
        started: list[str] = []
        gate = threading.Event()
        order_lock = threading.Lock()

        def runner(job: Job) -> None:
            with order_lock:
                started.append(job.id)
            gate.wait(timeout=30.0)
            job.mark("completed")

        queue = JobQueue(runner, max_concurrent=1)
        # submit before start so dispatch order is decided by the queue,
        # not by submission/start races: a1 a2 a3 from tenant A, b1 from B
        for job_id in ("a1", "a2", "a3"):
            queue.submit(self.make_job("tenant-a", job_id))
        queue.submit(self.make_job("tenant-b", "b1"))
        queue.start()

        wait_until(lambda: len(started) == 1, message="first job never started")
        assert queue.counts() == {"queued": 3, "running": 1}
        gate.set()  # release every subsequent runner invocation at once
        wait_until(lambda: len(started) == 4, message="queue never drained")
        # round-robin: tenant B's single job is served before A's backlog
        assert started == ["a1", "b1", "a2", "a3"]
        queue.drain(grace_s=5.0)

    def test_submit_after_drain_is_refused(self):
        queue = JobQueue(lambda job: job.mark("completed"), max_concurrent=1)
        queue.start()
        queue.drain(grace_s=5.0)
        with pytest.raises(RuntimeError, match="draining"):
            queue.submit(self.make_job("tenant-a", "late"))

    def test_trials_after_is_bounded_and_wakes_on_commit(self):
        job = self.make_job("tenant-a", "j1")
        start = time.monotonic()
        assert job.trials_after(0, timeout=0.2) == []
        assert time.monotonic() - start < 5.0  # bounded park, not forever
        job.append_trial({"trial": 0})
        assert job.trials_after(0, timeout=0.2) == [{"trial": 0}]


# -------------------------------------------------------- shared live server
@pytest.fixture(scope="module")
def live(tmp_path_factory):
    """One authenticated server with a completed 2-trial campaign."""
    state = tmp_path_factory.mktemp("serve-state")
    service = CampaignService(
        str(state), auth=TokenAuth([TOKEN_A, TOKEN_B]), max_concurrent=1
    )
    server = CampaignServer(service, port=0)
    assert server.start() == 0
    port = server.address[1]
    status, posted = request(
        port, "POST", "/campaigns", TOKEN_A, {**FAST_SPEC, "name": "shared"}
    )
    assert status == 202, posted
    snap = wait_for_state(port, TOKEN_A, posted["id"], ("completed", "failed"))
    assert snap["state"] == "completed", snap
    yield {"port": port, "state": str(state), "job_id": posted["id"]}
    server.drain(grace_s=10.0)


class TestEndpoints:
    def test_healthz_is_open_and_reports_auth(self, live):
        status, health = request(live["port"], "GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok" and health["auth"] is True
        assert health["jobs"].get("completed", 0) >= 1
        assert "serve/jobs_completed" in health["meters"]["counters"]

    def test_dashboard_served_at_root_without_auth(self, live):
        status, body = request(live["port"], "GET", "/")
        assert status == 200 and b"<html" in body.lower()

    @pytest.mark.parametrize("token", [None, "wrong-token"])
    def test_campaign_routes_reject_bad_credentials(self, live, token):
        status, body = request(live["port"], "GET", "/campaigns", token)
        assert status == 401
        assert body["error"]["type"] == "unauthorized"
        status, body = request(
            live["port"], "POST", "/campaigns", token, FAST_SPEC
        )
        assert status == 401

    def test_unknown_campaign_and_endpoint_are_typed_404s(self, live):
        status, body = request(live["port"], "GET", "/campaigns/job-nope", TOKEN_A)
        assert status == 404 and body["error"]["type"] == "not_found"
        status, body = request(
            live["port"], "GET", f"/campaigns/{live['job_id']}/bogus", TOKEN_A
        )
        assert status == 404 and body["error"]["type"] == "not_found"

    def test_cross_tenant_probe_looks_like_a_miss(self, live):
        status, body = request(
            live["port"], "GET", f"/campaigns/{live['job_id']}", TOKEN_B
        )
        assert status == 404 and body["error"]["type"] == "not_found"
        status, listing = request(live["port"], "GET", "/campaigns", TOKEN_B)
        assert status == 200 and listing["campaigns"] == []

    def test_malformed_json_is_a_typed_400(self, live):
        status, body = request(
            live["port"], "POST", "/campaigns", TOKEN_A, b"not json"
        )
        assert status == 400
        assert body["error"]["type"] == "bad_request"
        assert "not valid JSON" in body["error"]["message"]

    def test_bad_spec_is_a_typed_400_naming_the_key(self, live):
        status, body = request(
            live["port"], "POST", "/campaigns", TOKEN_A, {"explorer": "grid9"}
        )
        assert status == 400
        assert body["error"]["type"] == "bad_request"
        assert "explorer" in body["error"]["message"]

    def test_write_methods_other_than_post_are_405(self, live):
        status, body = request(
            live["port"], "DELETE", f"/campaigns/{live['job_id']}", TOKEN_A
        )
        assert status == 405 and body["error"]["type"] == "method_not_allowed"

    def test_snapshot_carries_fingerprint_and_progress(self, live):
        status, snap = request(
            live["port"], "GET", f"/campaigns/{live['job_id']}", TOKEN_A
        )
        assert status == 200
        assert snap["state"] == "completed"
        assert snap["n_trials_done"] == 2 == snap["n_trials_expected"]
        assert len(snap["fingerprint"]) == 64  # sha256 hex
        assert snap["tenant"] == tenant_label(TOKEN_A)

    def test_trial_stream_is_jsonl_with_terminal_record(self, live):
        conn = http.client.HTTPConnection("127.0.0.1", live["port"], timeout=60)
        conn.request(
            "GET",
            f"/campaigns/{live['job_id']}/trials",
            headers={"Authorization": f"Bearer {TOKEN_A}"},
        )
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        lines = [json.loads(line) for line in response.read().splitlines()]
        conn.close()
        assert [line["type"] for line in lines] == ["trial", "trial", "end"]
        end = lines[-1]
        assert end["state"] == "completed" and end["n_trials"] == 2
        assert end["fingerprint"] and len(end["fingerprint"]) == 64
        for row in lines[:-1]:
            assert row["status"] == "completed" and "config" in row

    def test_table_round_trips_the_fingerprint(self, live):
        import hashlib

        from repro.core import table_fingerprint, table_from_dict

        status, result = request(
            live["port"], "GET", f"/campaigns/{live['job_id']}/table", TOKEN_A
        )
        assert status == 200
        digest = hashlib.sha256(
            table_fingerprint(table_from_dict(result)).encode()
        ).hexdigest()
        assert digest == result["fingerprint_sha256"]

    def test_pareto_exposes_paper_fronts(self, live):
        status, pareto = request(
            live["port"], "GET", f"/campaigns/{live['job_id']}/pareto", TOKEN_A
        )
        assert status == 200
        assert set(pareto["fronts"]) >= {"fig4", "fig5"}
        assert pareto["fingerprint"] and pareto["id"] == live["job_id"]

    def test_trace_is_valid_chrome_trace(self, live):
        from repro.obs import validate_chrome_trace

        status, trace = request(
            live["port"], "GET", f"/campaigns/{live['job_id']}/trace", TOKEN_A
        )
        assert status == 200
        assert validate_chrome_trace(trace) == []
        assert trace["traceEvents"]

    def test_table_on_unfinished_job_is_409_not_ready(self, live):
        # an 18-trial campaign cannot finish between POST and the probe;
        # module teardown's drain checkpoints it, so no completion wait
        status, posted = request(
            live["port"],
            "POST",
            "/campaigns",
            TOKEN_A,
            {"explorer": "table1", "steps": 3000, "cache": False},
        )
        assert status == 202
        for view in ("table", "pareto"):
            status, body = request(
                live["port"], "GET", f"/campaigns/{posted['id']}/{view}", TOKEN_A
            )
            assert status == 409 and body["error"]["type"] == "not_ready"


# ---------------------------------------------------------- drain + restart
class TestDrainRestart:
    def test_drain_checkpoints_and_restart_replays_journal(self, tmp_path):
        state = str(tmp_path / "state")
        spec = {"explorer": "random", "trials": 5, "steps": 60, "cache": False}

        service = CampaignService(state, max_concurrent=1)
        server = CampaignServer(service, port=0)
        server.start()
        port = server.address[1]
        status, posted = request(port, "POST", "/campaigns", None, spec)
        assert status == 202
        job_id = posted["id"]
        journal = os.path.join(state, f"{job_id}.journal.jsonl")

        def committed() -> int:
            try:
                with open(journal, encoding="utf-8") as handle:
                    return sum(
                        1 for line in handle if '"type": "trial"' in line
                    )
            except OSError:
                return 0

        wait_until(lambda: committed() >= 2, message="no trials journaled")
        server.drain(grace_s=30.0)

        with open(os.path.join(state, f"{job_id}.job.json")) as handle:
            persisted = json.load(handle)
        assert persisted["state"] == "interrupted"
        n_checkpointed = committed()
        assert 2 <= n_checkpointed < 5

        # posting into a draining service is refused with a typed 503
        # (the listener is already down here, so assert at service level)
        with pytest.raises(RuntimeError, match="draining"):
            service.submit(OPEN_TENANT, spec)

        service2 = CampaignService(state, max_concurrent=1)
        server2 = CampaignServer(service2, port=0)
        assert server2.start() == 1  # the interrupted job was re-enqueued
        try:
            snap = wait_for_state(
                server2.address[1], None, job_id, ("completed", "failed")
            )
            assert snap["state"] == "completed", snap
            assert snap["n_trials_done"] == 5
            assert snap["n_replayed"] >= n_checkpointed
            assert snap["restarts"] == 1
        finally:
            server2.drain(grace_s=10.0)

    def test_interrupted_stream_ends_with_interrupted_record(self, tmp_path):
        """The trial stream terminates (no forever-park) across a drain."""
        state = str(tmp_path / "state")
        service = CampaignService(state, max_concurrent=1)
        server = CampaignServer(service, port=0)
        server.start()
        port = server.address[1]
        status, posted = request(
            port,
            "POST",
            "/campaigns",
            None,
            {"explorer": "table1", "steps": 2000, "cache": False},
        )
        assert status == 202
        job = service.job_for(OPEN_TENANT, posted["id"])
        wait_until(lambda: job.n_trials_done >= 1, message="no trial committed")

        # establish the stream (headers received) BEFORE draining, so the
        # handler is provably mid-stream when the checkpoint lands
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        conn.request("GET", f"/campaigns/{posted['id']}/trials")
        response = conn.getresponse()
        assert response.status == 200

        lines: list[dict] = []

        def stream() -> None:
            for raw in response.read().splitlines():
                lines.append(json.loads(raw))
            conn.close()

        reader = threading.Thread(target=stream, daemon=True)
        reader.start()
        server.drain(grace_s=30.0)
        reader.join(timeout=30.0)
        assert not reader.is_alive(), "stream never terminated after drain"
        assert lines[-1]["type"] == "end"
        assert lines[-1]["state"] == "interrupted"
        assert lines[-1]["n_trials"] >= 1


# ----------------------------------------------------------- support hooks
class TestSupportHooks:
    def test_resume_or_fresh_is_idempotent(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        fresh = CampaignJournal.resume_or_fresh(path)
        assert fresh.n_recorded == 0
        fresh.close()
        again = CampaignJournal.resume_or_fresh(path)  # now resumes
        assert again.n_recorded == 0
        again.close()

    def test_meter_registry_merge_snapshot(self):
        source = MeterRegistry()
        source.counter("jobs").inc(3)
        source.gauge("depth").set(7.0)
        target = MeterRegistry()
        target.counter("jobs").inc(1)
        target.merge_snapshot(source.snapshot())
        merged = target.snapshot()
        assert merged["counters"]["jobs"] == 4
        assert merged["gauges"]["depth"] == 7.0

    def test_campaign_stop_predicate_interrupts_cleanly(self):
        from repro.paper import Scale, table1_campaign

        deadline = time.monotonic() + 2.0
        report = table1_campaign(
            seed=0, scale=Scale(real_steps=40)
        ).run(stop=lambda: time.monotonic() > deadline)
        assert report.meta.get("interrupted") is True
        assert 1 <= len(report.table) < 18
