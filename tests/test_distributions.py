"""Tests for the action distributions and their analytic gradients."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.rl import Categorical, DiagGaussian, TanhGaussian


class TestDiagGaussian:
    def test_log_prob_matches_scipy(self, rng):
        mean = rng.standard_normal((5, 3))
        log_std = rng.standard_normal(3) * 0.3
        dist = DiagGaussian(mean, log_std)
        actions = rng.standard_normal((5, 3))
        expected = stats.norm.logpdf(actions, loc=mean, scale=np.exp(log_std)).sum(axis=-1)
        assert np.allclose(dist.log_prob(actions), expected)

    def test_entropy_matches_scipy(self, rng):
        log_std = np.array([0.1, -0.4])
        dist = DiagGaussian(np.zeros((1, 2)), log_std)
        expected = stats.norm.entropy(scale=np.exp(log_std)).sum()
        assert np.allclose(dist.entropy()[0], expected)

    def test_sample_statistics(self, rng):
        dist = DiagGaussian(np.full((20000, 1), 2.0), np.log(np.array([0.5])))
        samples = dist.sample(rng)
        assert abs(samples.mean() - 2.0) < 0.02
        assert abs(samples.std() - 0.5) < 0.02

    def test_mode_is_mean(self):
        mean = np.array([[1.0, -2.0]])
        dist = DiagGaussian(mean, np.zeros(2))
        assert np.allclose(dist.mode(), mean)

    def test_dlogp_dmean_finite_difference(self, rng):
        mean = rng.standard_normal((3, 2))
        log_std = np.array([0.2, -0.1])
        actions = rng.standard_normal((3, 2))
        analytic = DiagGaussian(mean, log_std).dlogp_dmean(actions)
        eps = 1e-6
        for i in range(3):
            for j in range(2):
                up, down = mean.copy(), mean.copy()
                up[i, j] += eps
                down[i, j] -= eps
                lp_up = DiagGaussian(up, log_std).log_prob(actions)[i]
                lp_down = DiagGaussian(down, log_std).log_prob(actions)[i]
                assert np.isclose(analytic[i, j], (lp_up - lp_down) / (2 * eps), atol=1e-5)

    def test_dlogp_dlogstd_finite_difference(self, rng):
        mean = rng.standard_normal((3, 2))
        log_std = np.array([0.2, -0.1])
        actions = rng.standard_normal((3, 2))
        analytic = DiagGaussian(mean, log_std).dlogp_dlogstd(actions)
        eps = 1e-6
        for j in range(2):
            up, down = log_std.copy(), log_std.copy()
            up[j] += eps
            down[j] -= eps
            lp_up = DiagGaussian(mean, up).log_prob(actions)
            lp_down = DiagGaussian(mean, down).log_prob(actions)
            num = (lp_up - lp_down) / (2 * eps)
            assert np.allclose(analytic[:, j], num, atol=1e-5)

    def test_dentropy_dlogstd_is_one(self):
        assert np.all(DiagGaussian.dentropy_dlogstd((4, 2)) == 1.0)


class TestTanhGaussian:
    def test_actions_bounded(self, rng):
        dist = TanhGaussian(rng.standard_normal((100, 2)) * 3, np.zeros(2))
        out = dist.rsample(rng)
        assert np.all(np.abs(out["action"]) < 1.0)
        assert np.allclose(out["action"], np.tanh(out["pre_tanh"]))

    def test_log_prob_change_of_variables(self, rng):
        """logp must equal gaussian logp minus log|J| of tanh."""
        mean = np.zeros((1, 1))
        log_std = np.zeros(1)
        dist = TanhGaussian(mean, log_std)
        z = np.array([[0.7]])
        lp = dist.log_prob_from_pre_tanh(z)
        gauss = stats.norm.logpdf(0.7)
        jac = np.log(1 - np.tanh(0.7) ** 2)
        assert np.isclose(lp[0], gauss - jac, atol=1e-9)

    def test_log_prob_integrates_to_one(self, rng):
        # numeric integral of p(a) over (-1, 1) ≈ 1
        dist = TanhGaussian(np.array([[0.3]]), np.array([np.log(0.8)]))
        a = np.linspace(-0.999, 0.999, 4001)
        z = np.arctanh(a)
        lp = np.array([dist.log_prob_from_pre_tanh(np.array([[zi]]))[0] for zi in z])
        integral = np.trapezoid(np.exp(lp), a)
        assert integral == pytest.approx(1.0, abs=5e-3)

    def test_log_std_clipped(self):
        dist = TanhGaussian(np.zeros((1, 1)), np.array([100.0]))
        assert dist.log_std[0, 0] <= 2.0
        dist = TanhGaussian(np.zeros((1, 1)), np.array([-100.0]))
        assert dist.log_std[0, 0] >= -8.0

    def test_reparam_gradients_finite_difference(self, rng):
        """Check grads_wrt_params against numeric differentiation of
        L = sum(w·a) + sum(v·logp) under fixed noise eps."""
        batch, dim = 4, 2
        mean = rng.standard_normal((batch, dim)) * 0.5
        log_std = rng.standard_normal((batch, dim)) * 0.2
        w = rng.standard_normal((batch, dim))
        v = rng.standard_normal(batch)
        eps_noise = rng.standard_normal((batch, dim))

        def compute(m, ls):
            d = TanhGaussian(m, ls)
            z = d.mean + d.std * eps_noise
            a = np.tanh(z)
            lp = d.log_prob_from_pre_tanh(z)
            return float(np.sum(w * a) + np.sum(v * lp))

        dist = TanhGaussian(mean, log_std)
        z = dist.mean + dist.std * eps_noise
        sample = {
            "action": np.tanh(z),
            "pre_tanh": z,
            "eps": eps_noise,
            "log_prob": dist.log_prob_from_pre_tanh(z),
        }
        dmean, dlog_std = dist.grads_wrt_params(sample, w, v)

        eps = 1e-6
        for i in range(batch):
            for j in range(dim):
                up, down = mean.copy(), mean.copy()
                up[i, j] += eps
                down[i, j] -= eps
                num = (compute(up, log_std) - compute(down, log_std)) / (2 * eps)
                assert np.isclose(dmean[i, j], num, atol=1e-4), (i, j)

                up, down = log_std.copy(), log_std.copy()
                up[i, j] += eps
                down[i, j] -= eps
                num = (compute(mean, up) - compute(mean, down)) / (2 * eps)
                assert np.isclose(dlog_std[i, j], num, atol=1e-4), (i, j)

    def test_mode(self):
        dist = TanhGaussian(np.array([[0.5]]), np.zeros(1))
        assert np.allclose(dist.mode(), np.tanh(0.5))


class TestCategorical:
    def test_probs_normalized(self, rng):
        dist = Categorical(rng.standard_normal((6, 4)) * 3)
        assert np.allclose(dist.probs.sum(axis=-1), 1.0)

    def test_log_prob_consistent(self, rng):
        logits = rng.standard_normal((5, 3))
        dist = Categorical(logits)
        actions = np.array([0, 1, 2, 0, 1])
        lp = dist.log_prob(actions)
        assert np.allclose(np.exp(lp), dist.probs[np.arange(5), actions])

    def test_sampling_distribution(self, rng):
        logits = np.log(np.array([[0.7, 0.2, 0.1]]))
        dist = Categorical(np.repeat(logits, 30000, axis=0))
        samples = dist.sample(rng)
        freq = np.bincount(samples, minlength=3) / len(samples)
        assert np.allclose(freq, [0.7, 0.2, 0.1], atol=0.02)

    def test_entropy_uniform_is_log_n(self):
        dist = Categorical(np.zeros((1, 8)))
        assert dist.entropy()[0] == pytest.approx(np.log(8))

    def test_mode(self):
        dist = Categorical(np.array([[0.1, 3.0, -1.0]]))
        assert dist.mode()[0] == 1

    def test_dlogp_dlogits_finite_difference(self, rng):
        logits = rng.standard_normal((3, 4))
        actions = np.array([1, 3, 0])
        analytic = Categorical(logits).dlogp_dlogits(actions)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                up, down = logits.copy(), logits.copy()
                up[i, j] += eps
                down[i, j] -= eps
                num = (
                    Categorical(up).log_prob(actions)[i]
                    - Categorical(down).log_prob(actions)[i]
                ) / (2 * eps)
                assert np.isclose(analytic[i, j], num, atol=1e-5)

    def test_dentropy_dlogits_finite_difference(self, rng):
        logits = rng.standard_normal((2, 3))
        analytic = Categorical(logits).dentropy_dlogits()
        eps = 1e-6
        for i in range(2):
            for j in range(3):
                up, down = logits.copy(), logits.copy()
                up[i, j] += eps
                down[i, j] -= eps
                num = (
                    Categorical(up).entropy()[i] - Categorical(down).entropy()[i]
                ) / (2 * eps)
                assert np.isclose(analytic[i, j], num, atol=1e-5)

    @given(st.integers(min_value=2, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_entropy_bounded_property(self, n):
        logits = np.random.default_rng(n).standard_normal((3, n)) * 2
        ent = Categorical(logits).entropy()
        assert np.all(ent >= 0)
        assert np.all(ent <= np.log(n) + 1e-9)
