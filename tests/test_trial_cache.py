"""Content-addressed trial cache: keys, persistence, code-version guard.

The campaign-level integration (cold run trains, warm run commits every
trial from cache with zero env steps and a byte-identical table) lives
in :mod:`tests.test_vector_determinism`; this module covers the cache
itself.
"""

from __future__ import annotations

import shutil

import pytest

from repro.core import Configuration, TrialResult, TrialStatus
from repro.exec import CODE_HASH_PACKAGES, TrialCache, code_version_tag

IDENTITY = {"space": "abc", "fault_plan": "", "metrics": ["reward"], "study": {"s": 1}}


def make_trial(trial_id: int = 1, status: str = TrialStatus.COMPLETED) -> TrialResult:
    return TrialResult(
        config=Configuration({"rk": 3, "fw": "stable"}, trial_id=trial_id),
        objectives={"reward": -1.5} if status == TrialStatus.COMPLETED else {},
        status=status,
        seed=7,
        measurements={"reward": -1.5, "eval_reward": -2.0},
        extras={"learning_curve": [[100, -3.0]]},
    )


class TestKeys:
    def test_key_is_stable(self):
        cache = TrialCache(code_tag="t0")
        trial = make_trial()
        k1 = cache.key(trial.config, 7, IDENTITY)
        k2 = cache.key(trial.config, 7, IDENTITY)
        assert k1 == k2 and len(k1) == 32

    def test_key_ignores_trial_id(self):
        cache = TrialCache(code_tag="t0")
        a = Configuration({"rk": 3}, trial_id=1)
        b = Configuration({"rk": 3}, trial_id=9)
        assert cache.key(a, 7, IDENTITY) == cache.key(b, 7, IDENTITY)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda c, s, i, t: (Configuration({"rk": 5}, trial_id=1), s, i, t),
            lambda c, s, i, t: (c, s + 1, i, t),
            lambda c, s, i, t: (c, s, {**i, "space": "zzz"}, t),
            lambda c, s, i, t: (c, s, {**i, "study": {"s": 2}}, t),
            lambda c, s, i, t: (c, s, i, "t1"),
        ],
    )
    def test_key_sensitive_to_every_ingredient(self, mutate):
        base_config = Configuration({"rk": 3}, trial_id=1)
        config, seed, identity, tag = mutate(base_config, 7, dict(IDENTITY), "t0")
        baseline = TrialCache(code_tag="t0").key(base_config, 7, IDENTITY)
        assert TrialCache(code_tag=tag).key(config, seed, identity) != baseline


class TestStoreLookup:
    def test_round_trip_in_memory(self):
        cache = TrialCache(code_tag="t0")
        trial = make_trial()
        key = cache.key(trial.config, 7, IDENTITY)
        assert cache.store(key, trial, [(100, -3.0)])
        hit = cache.lookup(key, trial.config, 7)
        assert hit is not None
        got, checkpoints = hit
        assert got.objectives == trial.objectives
        assert got.extras == trial.extras
        assert checkpoints == [(100, -3.0)]
        assert cache.hits == 1

    def test_lookup_renumbers_to_requesting_campaign(self):
        cache = TrialCache(code_tag="t0")
        trial = make_trial(trial_id=1)
        key = cache.key(trial.config, 7, IDENTITY)
        cache.store(key, trial)
        later = Configuration(trial.config.as_dict(), trial_id=14)
        got, _ = cache.lookup(key, later, 7)
        assert got.trial_id == 14

    def test_persists_across_instances(self, tmp_path):
        first = TrialCache(tmp_path / "cache", code_tag="t0")
        trial = make_trial()
        key = first.key(trial.config, 7, IDENTITY)
        first.store(key, trial)
        second = TrialCache(tmp_path / "cache", code_tag="t0")
        assert second.lookup(key, trial.config, 7) is not None

    def test_only_completed_trials_stored(self):
        cache = TrialCache(code_tag="t0")
        failed = make_trial(status=TrialStatus.FAILED)
        key = cache.key(failed.config, 7, IDENTITY)
        assert not cache.store(key, failed)
        assert cache.lookup(key, failed.config, 7) is None

    def test_mismatched_seed_misses(self):
        cache = TrialCache(code_tag="t0")
        trial = make_trial()
        key = cache.key(trial.config, 7, IDENTITY)
        cache.store(key, trial)
        assert cache.lookup(key, trial.config, 8) is None


class TestCodeVersionTag:
    def test_default_covers_trial_relevant_packages(self):
        tag = code_version_tag()
        assert len(tag) == 12
        assert code_version_tag() == tag  # memoized, stable
        assert {"rl", "airdrop"} <= set(CODE_HASH_PACKAGES)

    def test_edited_reward_function_invalidates_entries(self, tmp_path):
        """The whole point of the code tag: a changed reward means a cold cache."""
        from pathlib import Path

        import repro.airdrop as airdrop_pkg

        tree = tmp_path / "airdrop"
        shutil.copytree(Path(airdrop_pkg.__file__).parent, tree)
        tag_before = code_version_tag([tree])
        assert tag_before == code_version_tag([tree])

        rewards = tree / "reward.py"
        source = rewards.read_text()
        rewards.write_text(source.replace("return", "return 0.5 *", 1))
        tag_after = code_version_tag([tree])
        assert tag_after != tag_before

        # entries written under the old tag are dead to a cache on the new one
        store = tmp_path / "store"
        old = TrialCache(store, code_tag=tag_before)
        trial = make_trial()
        key = old.key(trial.config, 7, IDENTITY)
        old.store(key, trial)
        new = TrialCache(store, code_tag=tag_after)
        assert new.lookup(key, trial.config, 7) is None
        # ... and the new key itself differs, so nothing collides either way
        assert new.key(trial.config, 7, IDENTITY) != key

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = TrialCache(tmp_path / "cache", code_tag="t0")
        trial = make_trial()
        key = cache.key(trial.config, 7, IDENTITY)
        cache.store(key, trial)
        (tmp_path / "cache" / f"{key}.json").write_text("{ not json")
        fresh = TrialCache(tmp_path / "cache", code_tag="t0")
        assert fresh.lookup(key, trial.config, 7) is None
