"""Fixture: scoped rules must ignore files outside their packages."""
import numpy as np
import time


def unscoped():
    # RPR001/RPR002 are scoped to the measured packages; this file's
    # directory is not one of them, so these stay un-flagged here
    return np.random.rand(3), time.time(), sum(x for x in range(3))
