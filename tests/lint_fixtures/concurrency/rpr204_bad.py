"""Known-bad: threads spawned with no ``daemon=`` flag and no reachable
``join()`` anywhere in their scope (RPR204, one finding per spawn)."""
import threading


def detach(task) -> None:
    worker = threading.Thread(target=task)
    worker.start()


class Service:
    def start(self) -> None:
        self.loop = threading.Thread(target=self._loop)
        self.loop.start()

    def _loop(self) -> None:
        pass
