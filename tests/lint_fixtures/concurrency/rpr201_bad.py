"""Known-bad: attributes written from a worker thread and the caller
thread with no common lock — RPR201 must fire once per attribute."""
import threading


class Stats:
    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.count = 0
        self.total = 0
        self.worker = threading.Thread(target=self._drain, daemon=True)
        self.worker.start()

    def _drain(self) -> None:
        for _ in range(10):
            self.count += 1  # races add() below: no lock on either side
            self._bump()

    def _bump(self) -> None:
        self.total += 1  # reachable from both the thread and the caller

    def add(self, n: int) -> None:
        self.count += n
        self._bump()
