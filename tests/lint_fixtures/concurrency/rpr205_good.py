"""Good twin of rpr205_bad: the lock covers the whole check-then-act
window, so no thread can interleave between the test and the write."""
import threading


class Registry:
    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.seen: dict[str, int] = {}
        self.hits = 0
        threading.Thread(target=self._ingest, daemon=True).start()

    def _ingest(self) -> None:
        with self.lock:
            if "boot" not in self.seen:
                self.seen["boot"] = 1
            if self.hits < 100:
                self.hits += 1

    def record(self, key: str) -> None:
        with self.lock:
            self.seen[key] = 1
            self.hits += 1
