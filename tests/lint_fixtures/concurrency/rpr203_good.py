"""Good twin of rpr203_bad: I/O happens outside the critical section,
queue waits are bounded, and Condition.wait (which releases its lock)
is exempt."""
import queue
import threading


class Pump:
    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        self.pending = b""

    def flush(self, sock) -> None:
        q = queue.Queue()
        data = sock.recv(4096)  # before the lock
        q.put(data)
        with self.lock:
            self.pending = data
            item = q.get(timeout=1.0)  # bounded wait is acceptable
        sock.sendall(item)  # after the lock

    def wait_ready(self) -> None:
        with self.cond:
            self.cond.wait(timeout=5.0)  # releases the wrapped lock
