"""Known-bad: two paths acquire the same pair of locks in opposite
order — RPR202 must report the lock-order cycle once."""
import threading


class Transfer:
    def __init__(self) -> None:
        self.alpha = threading.Lock()
        self.beta = threading.Lock()
        threading.Thread(target=self.credit, daemon=True).start()

    def credit(self) -> None:
        with self.alpha:
            with self.beta:
                self.credits = 1

    def debit(self) -> None:
        with self.beta:
            with self.alpha:
                self.debits = 1
