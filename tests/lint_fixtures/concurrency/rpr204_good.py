"""Good twin of rpr204_bad: the module-level thread is joined, the
class thread is a daemon and joined (bounded) on shutdown."""
import threading


def run_batch(task) -> None:
    worker = threading.Thread(target=task)
    worker.start()
    worker.join()


class Service:
    def start(self) -> None:
        self.loop = threading.Thread(target=self._loop, daemon=True)
        self.loop.start()

    def stop(self) -> None:
        self.loop.join(timeout=2.0)

    def _loop(self) -> None:
        pass
