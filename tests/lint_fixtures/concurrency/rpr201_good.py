"""Good twin of rpr201_bad: every shared write holds the same lock,
including writes inside a ``_locked``-suffix helper whose guard is
held by its *callers* (the entry-lock fixpoint must prove this)."""
import threading


class Stats:
    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.count = 0
        self.total = 0
        self.worker = threading.Thread(target=self._drain, daemon=True)
        self.worker.start()

    def _drain(self) -> None:
        for _ in range(10):
            with self.lock:
                self.count += 1
                self._bump_locked()

    def _bump_locked(self) -> None:
        self.total += 1  # guarded: every caller holds self.lock

    def add(self, n: int) -> None:
        with self.lock:
            self.count += n
            self._bump_locked()
