"""Known-bad: check-then-act on shared state where the *test* runs
outside the lock even though the writes inside are guarded (RPR205
must fire once per check site; RPR201 stays silent — writes share a
lock)."""
import threading


class Registry:
    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.seen: dict[str, int] = {}
        self.hits = 0
        threading.Thread(target=self._ingest, daemon=True).start()

    def _ingest(self) -> None:
        if "boot" not in self.seen:  # test outside the lock...
            with self.lock:
                self.seen["boot"] = 1  # ...write guarded: still a race
        if self.hits < 100:
            with self.lock:
                self.hits += 1

    def record(self, key: str) -> None:
        with self.lock:
            self.seen[key] = 1
            self.hits += 1
