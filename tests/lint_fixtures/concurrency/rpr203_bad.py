"""Known-bad: blocking calls made while a lock is held — lexically and
through a ``_locked`` helper whose callers hold the lock (RPR203)."""
import queue
import subprocess
import threading
import time


class Pump:
    def __init__(self) -> None:
        self.lock = threading.Lock()

    def flush(self, sock) -> None:
        q = queue.Queue()
        with self.lock:
            data = sock.recv(4096)  # network read under the lock
            time.sleep(0.05)  # sleep under the lock
            q.put(data)
            item = q.get()  # unbounded queue wait under the lock
            subprocess.run(["sync", str(item)])

    def _send_locked(self, sock, frame: bytes) -> None:
        sock.sendall(frame)  # callers hold self.lock (entry fixpoint)

    def push(self, sock, frame: bytes) -> None:
        with self.lock:
            self._send_locked(sock, frame)
