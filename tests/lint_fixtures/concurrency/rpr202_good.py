"""Good twin of rpr202_bad: both paths take alpha before beta, so the
lock-order graph is acyclic."""
import threading


class Transfer:
    def __init__(self) -> None:
        self.alpha = threading.Lock()
        self.beta = threading.Lock()
        threading.Thread(target=self.credit, daemon=True).start()

    def credit(self) -> None:
        with self.alpha:
            with self.beta:
                self.credits = 1

    def debit(self) -> None:
        with self.alpha:
            with self.beta:
                self.debits = 1
