"""Fixture: virtual clocks and injected timestamps — RPR002 stays silent."""
import time


def measure(virtual_now, clock):
    time.sleep(0.0)  # scheduling, not a clock *read*
    return virtual_now + clock()
