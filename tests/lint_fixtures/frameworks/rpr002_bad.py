"""Fixture: wall-clock reads in a measured (cache-key-hashed) module."""
import time
from datetime import datetime


def measure():
    started = time.time()
    stamp = datetime.now()
    clock = time.perf_counter  # aliasing is the usual leak vector
    return started, stamp, clock()
