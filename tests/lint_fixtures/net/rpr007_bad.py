"""RPR007 bad fixture: blocking socket calls with no timeout armed."""

import socket


def read_forever(sock):
    return sock.recv(4096)  # finding: no settimeout in this function


def accept_forever(listener):
    conn, addr = listener.accept()  # finding: no settimeout in this function
    return conn, addr


def dial(host, port):
    return socket.create_connection((host, port))  # finding: no timeout arg


def outer_does_not_protect_inner(sock):
    sock.settimeout(1.0)

    def inner():
        return sock.recv(1)  # finding: nested scope has no timeout of its own

    return inner


def disarmed(sock):
    sock.settimeout(None)
    return sock.recv(16)  # finding: settimeout(None) disarms, not arms
