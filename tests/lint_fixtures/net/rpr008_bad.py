"""RPR008 bad fixture: unbounded reconnect loops and uncapped backoff."""

import socket
import time


def reconnect_forever(host, port):
    while True:  # finding: redial loop with no attempt bound
        try:
            return socket.create_connection((host, port), timeout=5.0)
        except OSError:
            time.sleep(1.0)


def spin_dial(sock, addr):
    sock.settimeout(5.0)
    while 1:  # finding: constant-true loop around connect()
        try:
            sock.connect(addr)
            return sock
        except OSError:
            continue


def backoff_without_ceiling(attempt):
    time.sleep(0.5 * 2 ** attempt)  # finding: exponential with no min() cap
