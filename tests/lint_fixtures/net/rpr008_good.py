"""RPR008 good fixture: bounded retries and capped backoff."""

import socket
import time


def reconnect_bounded(host, port, retries):
    for attempt in range(retries + 1):
        if attempt:
            time.sleep(min(0.5 * 2 ** (attempt - 1), 30.0))
        try:
            return socket.create_connection((host, port), timeout=5.0)
        except OSError:
            continue
    return None


def serve_until_shutdown(conn, closing):
    # a constant-true loop is fine when it does not redial anything
    conn.settimeout(1.0)
    while True:
        if closing.is_set():
            return
        try:
            conn.recv(4096)
        except socket.timeout:
            continue


def accept_loop(listener, closing):
    # loop condition is not constant-true: bounded by the closing flag
    listener.settimeout(0.2)
    while not closing.is_set():
        try:
            listener.accept()
        except socket.timeout:
            continue
