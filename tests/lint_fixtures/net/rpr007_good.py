"""RPR007 good fixture: every blocking call has a timeout armed."""

import socket


def read_with_deadline(sock, timeout):
    sock.settimeout(timeout)
    return sock.recv(4096)


def accept_with_deadline(listener):
    listener.settimeout(1.0)
    try:
        return listener.accept()
    except socket.timeout:
        return None


def dial(host, port):
    return socket.create_connection((host, port), timeout=10.0)


def dial_positional(host, port, timeout):
    return socket.create_connection((host, port), timeout)


def send_only(sock, data):
    # sends are not in scope for RPR007 (covered by the protocol's framing)
    sock.sendall(data)
