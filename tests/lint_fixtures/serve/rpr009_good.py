"""RPR009 good fixture: bounded waits that re-check terminal/drain state."""

import threading


def stream_rows(job, send):
    sent = 0
    while True:
        rows = job.trials_after(sent, timeout=0.5)  # bounded: re-checks below
        for row in rows:
            send(row)
        sent += len(rows)
        if job.terminal and job.n_trials_done <= sent:
            return sent


def wait_for_stop(stop: threading.Event) -> None:
    while not stop.wait(0.5):  # positional timeout: bounded park
        pass


def join_with_grace(thread: threading.Thread) -> None:
    thread.join(timeout=5.0)


def bounded_cond(cond: threading.Condition) -> None:
    with cond:
        cond.wait(timeout=0.2)


def string_join(parts: list[str]) -> str:
    return ",".join(parts)  # str.join is not a thread park
