"""RPR009 bad fixture: request-thread code that sleeps or parks forever."""

import threading
import time


def poll_until_done(job):
    while not job.terminal:
        time.sleep(0.5)  # finding: sleep in the serve package
    return job.snapshot()


def wait_for_completion(job):
    job.done_event.wait()  # finding: no timeout — parks until completion
    return job.result


def join_runner(thread):
    thread.join()  # finding: no timeout — blocks on the runner thread


def wait_disarmed(cond: threading.Condition):
    with cond:
        cond.wait(timeout=None)  # finding: timeout=None is no deadline at all
