"""Drifted fixture: the gate reads a field the recorder never writes."""


def record(args):
    payload = {
        "workloads": {},
        "steps": args.steps,
    }
    return payload


def compare(args):
    baseline, candidate = args.recordings
    return baseline["workloads"], candidate["derived"]
