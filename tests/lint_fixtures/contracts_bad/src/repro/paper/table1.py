"""Drifted fixture: space and case study disagree on parameter names."""


def airdrop_parameter_space():
    return ParameterSpace(
        parameters=[
            Categorical("rk_order", [3, 5, 8]),
            Categorical("ghost_param", [1, 2]),
        ]
    )


class CaseStudy:
    def make_spec(self, config, seed):
        return TrainSpec(
            rk_order=int(config["rk_order"]),
            cores=int(config["phantom_param"]),
        )
