"""Drifted fixture: to/from dict disagree with TrialResult and each other."""


def trial_to_dict(trial):
    return {
        "config": trial.config,
        "objectives": trial.objectives,
    }


def trial_from_dict(row):
    return (row["config"], row.get("objectives"), row.get("phantom_key"))
