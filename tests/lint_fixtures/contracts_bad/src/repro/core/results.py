"""Drifted fixture: a field the serializer never writes."""


class TrialResult:
    config: dict
    objectives: dict
    secret_field: float
