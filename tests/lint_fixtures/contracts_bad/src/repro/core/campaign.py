"""Drifted fixture: identity()/_cache_identity() out of sync with consumers."""


class Campaign:
    def identity(self):
        return {
            "explorer": self.explorer,
            "base_seed": self.base_seed,
        }

    def _cache_identity(self):
        return {
            "space": self._space_hash(),
            "seed": 0,  # collides with TrialCache.key()'s own "seed" field
        }
