"""Drifted fixture: a declared flag no handler ever reads."""


def add_parser(subparsers):
    p = subparsers.add_parser("campaign")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--orphan-flag", type=str, default=None)


def handle(args):
    return args.seed
