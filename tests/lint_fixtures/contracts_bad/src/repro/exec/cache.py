"""Fixture cache with the real key() payload shape."""


class TrialCache:
    def key(self, config, seed, identity):
        payload = {
            "config": repr(config),
            "seed": int(seed),
            "code": self.code_tag,
            **identity,
        }
        return payload
