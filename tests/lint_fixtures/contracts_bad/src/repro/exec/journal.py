"""Drifted fixture: requires a field the campaign never provides."""

_IDENTITY_FIELDS = (
    "explorer",
    "base_seed",
    "metrics",
)
