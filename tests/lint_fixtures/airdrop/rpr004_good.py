"""Fixture: stacked-array accumulation — RPR004 stays silent."""
import numpy as np


def weighted_state(states, weights):
    total = np.sum(np.asarray(weights)[:, None] * np.stack(states), axis=0)
    count = sum(s.size for s in states)  # repro-lint: disable=RPR004 -- integer count, no rounding
    return total, count + sum([1, 2, 3])
