"""Fixture: order-sensitive float accumulation in a numeric kernel."""


def weighted_state(states, weights):
    return sum(w * s for w, s in zip(weights, states))
