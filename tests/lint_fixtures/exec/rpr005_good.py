"""Fixture: failures surface as structured outcomes — RPR005 stays silent."""


def drain(queue, log):
    try:
        return queue.pop()
    except IndexError:
        pass  # narrow type: an empty queue is an expected state
    except Exception as exc:
        log.append(repr(exc))
        raise
