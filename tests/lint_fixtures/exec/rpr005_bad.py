"""Fixture: swallowed exceptions in a resilience path."""


def drain(queue):
    try:
        return queue.pop()
    except Exception:
        pass


def flush(handle):
    try:
        handle.flush()
    except:  # noqa: E722
        ...
