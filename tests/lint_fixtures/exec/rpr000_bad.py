"""Fixture: a suppression written without a reason raises RPR000."""


def flush(handle):
    try:
        handle.flush()
    except Exception:  # repro-lint: disable=RPR005
        pass
