"""Fixture: digests over explicitly ordered inputs — RPR003 stays silent."""
import hashlib
import json


def fingerprint(payload, names):
    raw = hashlib.sha256(json.dumps(payload, sort_keys=True).encode())
    tags = json.dumps(sorted({"b", "a"}))
    keyed = hashlib.sha1(str(sorted(payload.keys())).encode())
    sets = json.dumps(sorted(set(names)))
    return raw, tags, keyed, sets
