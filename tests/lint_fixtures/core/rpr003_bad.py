"""Fixture: unordered iteration feeding digests / canonical JSON."""
import hashlib
import json


def fingerprint(payload, names):
    raw = hashlib.sha256(json.dumps(payload).encode())  # no sort_keys
    tags = json.dumps([n for n in {"b", "a"}])          # set literal order
    keyed = hashlib.sha1(str(list(payload.keys())).encode())
    sets = json.dumps(list(set(names)))
    return raw, tags, keyed, sets
