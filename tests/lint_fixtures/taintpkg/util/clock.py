"""A wall-clock helper in a package *outside* the code-hash scope —
invisible to the per-file RPR002 scan, caught only by the
interprocedural taint pass when a digest sink calls it."""
import time


def stamp() -> float:
    return time.time()
