"""An unseeded RNG helper outside the measured packages — invisible to
the per-file RPR001 scan, caught only by the interprocedural taint
pass when a digest sink calls it."""
import random


def jitter() -> float:
    return random.random()
