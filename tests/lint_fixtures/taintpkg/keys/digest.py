"""The sink: a cache key built from a hashlib digest that (two call
hops away) ingests wall-clock and unseeded-RNG values."""
import hashlib

from ..flow.mix import salt


def cache_key(payload: str) -> str:
    digest = hashlib.sha256()
    digest.update(payload.encode("utf-8"))
    digest.update(salt().encode("utf-8"))
    return digest.hexdigest()
