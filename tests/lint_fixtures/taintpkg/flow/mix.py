"""The middle hop: launders nondeterminism from util into a string the
cache key ingests, so the taint is two call hops from the sink."""
from ..util.clock import stamp
from ..util.entropy import jitter


def salt() -> str:
    return f"{stamp()}-{jitter()}"
