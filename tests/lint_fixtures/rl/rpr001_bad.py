"""Fixture: every form of hidden-global / unseeded RNG RPR001 catches."""
import random

import numpy as np
from numpy.random import default_rng


def sample_noise(n):
    legacy = np.random.rand(n)            # legacy global numpy RNG
    stdlib = random.random()              # stdlib global RNG
    unseeded = default_rng()              # fresh OS entropy every call
    also_unseeded = np.random.default_rng()
    return legacy, stdlib, unseeded, also_unseeded
