"""Fixture: explicit, seeded randomness — RPR001 must stay silent."""
import random

import numpy as np
from numpy.random import default_rng


def sample_noise(n, seed):
    rng = default_rng(seed)
    other = np.random.default_rng(np.random.SeedSequence(seed))
    local = random.Random(seed)
    return rng.standard_normal(n), other.random(), local.random()
