"""Partition-tolerance tests: chaos proxy, rejoin, quarantine, degradation.

The acceptance bar for this layer: a campaign routed through the
:class:`ChaosProxy` with a worker partitioned mid-flight and later
healed must finish with a results table byte-identical to a serial run —
no duplicated outcomes, no lost outcomes, no hung campaign. The proxy
injects real failures on real sockets, so these tests exercise the same
code paths a flaky datacenter would.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core import Configuration
from repro.core.serialization import table_fingerprint
from repro.exec import RetryPolicy, TrialOutcome, TrialTask
from repro.faults import (
    ChaosPlan,
    FrameCorruption,
    LinkLatency,
    LinkPartition,
    LinkThrottle,
)
from repro.net import (
    PROTOCOL_VERSION,
    ChaosProxy,
    FleetLostError,
    FleetPolicy,
    RemoteExecutor,
    WorkerAgent,
)
from repro.net.coordinator import LOCAL_FALLBACK
from repro.obs import (
    EVT_WORKER_QUARANTINED,
    EVT_WORKER_REJOINED,
    RingBufferSink,
    Telemetry,
)
from test_net import RemoteCaseStudy, _silent, campaign, encode_payload, recv_frame, send_frame


def make_task(seq, trial_id=None, attempt=0):
    return TrialTask(
        seq=seq,
        config=Configuration({"quality": 1, "cost": 10}, trial_id=trial_id or seq),
        seed=0,
        case_study=RemoteCaseStudy(),
        attempt=attempt,
    )


def run_proxied_campaign(
    plan,
    n_workers=2,
    heartbeat_timeout=10.0,
    policy=None,
    telemetry=None,
    secret=None,
    study=None,
    worker_kwargs=None,
    during=None,
    **campaign_kwargs,
):
    """A campaign whose workers dial the coordinator through a ChaosProxy.

    ``during(executor, proxy)`` runs on a side thread while the campaign
    is in flight — tests use it to heal partitions on *observed* state
    (e.g. "after the coordinator reaped the worker") instead of racing
    wall-clock guesses.
    """
    executor = RemoteExecutor(
        max_workers=n_workers,
        heartbeat_timeout=heartbeat_timeout,
        policy=policy,
        secret=secret,
        telemetry=telemetry,
    )
    host, port = executor.address
    proxy = ChaosProxy(host, port, plan=plan)
    agents = [
        WorkerAgent(
            proxy.host,
            proxy.port,
            name=f"w{i}",
            log=_silent,
            secret=secret,
            reconnect_backoff=0.05,
            **(worker_kwargs or {}),
        )
        for i in range(n_workers)
    ]
    threads = [threading.Thread(target=agent.run, daemon=True) for agent in agents]
    side = None
    try:
        # start workers one at a time so link indices are deterministic:
        # link i belongs to worker w<i>'s first connection
        for i, thread in enumerate(threads):
            thread.start()
            assert proxy.wait_for_links(i + 1, timeout=10.0)
        executor.wait_for_workers(n_workers, timeout=30.0)
        if during is not None:
            side = threading.Thread(
                target=during, args=(executor, proxy), daemon=True
            )
            side.start()
        report = campaign(study, executor=executor, **campaign_kwargs).run()
    finally:
        executor.shutdown()
        proxy.close()
        for thread in threads:
            thread.join(timeout=10.0)
        if side is not None:
            side.join(timeout=10.0)
    return report, proxy, agents


# ---------------------------------------------------------------- the plan
class TestChaosPlan:
    def plan(self):
        return ChaosPlan(
            partitions=[LinkPartition(link=0, after_outcomes=2, heal_after_outcomes=3)],
            throttles=[LinkThrottle(bytes_per_s=1e6, link=1)],
            corruptions=[FrameCorruption(link=0, frame_index=4, mode="garbage")],
            seed=7,
            name="demo",
        )

    def test_json_round_trip_is_lossless(self, tmp_path):
        plan = self.plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        assert ChaosPlan.load(path) == plan

    def test_hash_is_stable_and_ignores_the_name(self):
        plan = self.plan()
        renamed = ChaosPlan.from_dict(dict(plan.to_dict(), name="other"))
        assert plan.plan_hash() == renamed.plan_hash()
        reseeded = ChaosPlan.from_dict(dict(plan.to_dict(), seed=8))
        assert plan.plan_hash() != reseeded.plan_hash()

    def test_empty_plan_is_first_class(self):
        plan = ChaosPlan()
        plan.validate()
        assert plan.is_empty and plan.n_events == 0
        assert "transparent relay" in plan.describe()

    def test_validate_rejects_inconsistencies(self):
        with pytest.raises(ValueError, match="one partition per link"):
            ChaosPlan(
                partitions=[LinkPartition(link=0), LinkPartition(link=0)]
            ).validate()
        with pytest.raises(ValueError, match="delay_s"):
            ChaosPlan(latencies=[LinkLatency(delay_s=0.0)]).validate()
        with pytest.raises(ValueError, match="direction"):
            ChaosPlan(
                corruptions=[FrameCorruption(link=0, frame_index=0, direction="sideways")]
            ).validate()

    def test_garbage_bytes_are_seeded_and_sized(self):
        plan = self.plan()
        blob = plan.garbage_bytes(100, 0, "up", 4)
        assert len(blob) == 100
        assert blob == plan.garbage_bytes(100, 0, "up", 4)
        assert blob != plan.garbage_bytes(100, 0, "up", 5)
        assert blob != ChaosPlan(seed=8).garbage_bytes(100, 0, "up", 4)

    def test_describe_names_every_event(self):
        text = self.plan().describe()
        assert "partition" in text and "throttle" in text and "garbage" in text


# ----------------------------------------------------------- transparent
class TestTransparentRelay:
    def test_empty_plan_is_byte_identical_to_serial(self):
        reference = campaign().run()
        report, proxy, _ = run_proxied_campaign(ChaosPlan())
        assert report.meta["n_completed"] == 8
        assert table_fingerprint(report.table) == table_fingerprint(reference.table)
        stats = proxy.stats()
        assert stats["outcomes_relayed"] == 8
        assert stats["partitions"] == {}


# ------------------------------------------------------ partition + rejoin
class TestPartitionRejoin:
    def test_partition_then_heal_matches_serial_with_no_dups_or_losses(self):
        """The tentpole acceptance test.

        Worker w0's link is partitioned after 2 relayed outcomes; the
        healer thread waits for the coordinator to actually notice the
        loss (w0 reaped into rejoin limbo) and only then heals, so the
        rejoin path — not a lucky fast heal — is what finishes the
        campaign. A generous grace keeps w0's in-flight trial parked
        instead of crash-synthesized.
        """
        reference = campaign().run()
        sink = RingBufferSink()
        telem = Telemetry(sink)
        plan = ChaosPlan(
            partitions=[LinkPartition(link=0, after_outcomes=2)], name="split-w0"
        )

        def heal_after_reap(executor, proxy):
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                if executor.fleet_state()["limbo"]:
                    break  # the loss was noticed: w0's seqs are parked
                if executor._closing:
                    return
                time.sleep(0.05)
            proxy.heal()

        report, proxy, _ = run_proxied_campaign(
            plan,
            heartbeat_timeout=0.8,
            policy=FleetPolicy(min_workers=1, rejoin_grace_s=30.0),
            telemetry=telem,
            study=RemoteCaseStudy(sleep_s=0.2),
            during=heal_after_reap,
        )
        assert report.meta["n_completed"] == 8
        assert table_fingerprint(report.table) == table_fingerprint(reference.table)
        # exactly one trial row per configuration: nothing lost, nothing doubled
        assert len(report.table) == 8
        assert len({row.trial_id for row in report.table}) == 8
        assert len(sink.events(EVT_WORKER_REJOINED)) >= 1
        assert sink.events(EVT_WORKER_QUARANTINED) == []
        counters = telem.meters.snapshot()["counters"]
        assert counters.get("net/rejoins", 0) >= 1
        assert counters.get("net/quarantines", 0) == 0
        assert proxy.stats()["partitions"]["0"]["healed"] is True

    def test_garbage_frame_on_an_authenticated_link_recovers(self):
        """A corrupted task frame fails HMAC, the worker redials, the
        campaign retries onto the same fingerprint as serial."""
        reference = campaign().run()
        plan = ChaosPlan(
            corruptions=[
                FrameCorruption(link=0, frame_index=2, direction="down", mode="garbage")
            ],
            seed=3,
        )
        report, _, _ = run_proxied_campaign(
            plan,
            heartbeat_timeout=1.0,
            policy=FleetPolicy(min_workers=1, rejoin_grace_s=5.0),
            secret="chaos-secret",
            retry=RetryPolicy(max_retries=3, backoff_s=0.0),
        )
        assert report.meta["n_completed"] == 8
        assert table_fingerprint(report.table) == table_fingerprint(reference.table)


# ------------------------------------------------------------ throttling
class TestThrottledLink:
    def test_throttled_campaign_completes_under_deadline(self):
        reference = campaign().run()
        plan = ChaosPlan(throttles=[LinkThrottle(bytes_per_s=50_000, link=-1)])
        start = time.monotonic()
        report, proxy, _ = run_proxied_campaign(plan, trial_timeout=30.0)
        elapsed = time.monotonic() - start
        assert report.meta["n_completed"] == 8
        assert table_fingerprint(report.table) == table_fingerprint(reference.table)
        assert elapsed < 60.0
        assert proxy.stats()["outcomes_relayed"] == 8


# ------------------------------------------------- rejoin/dedup unit level
class _FakeWorker:
    """A scripted raw-socket worker for coordinator-level tests."""

    def __init__(self, executor, session, name="fake"):
        self.executor = executor
        self.session = session
        self.name = name
        self.sock = None

    def connect(self, inflight=()):
        host, port = self.executor.address
        self.sock = socket.create_connection((host, port), timeout=5.0)
        send_frame(self.sock, {
            "type": "hello", "version": PROTOCOL_VERSION,
            "code_tag": self.executor.code_tag, "name": self.name,
            "slots": 1, "session": self.session,
            "inflight": sorted(inflight),
        })
        welcome = recv_frame(self.sock, timeout=5.0)
        assert welcome["type"] == "welcome", welcome
        return welcome

    def recv(self, timeout=5.0):
        return recv_frame(self.sock, timeout=timeout)

    def send_outcome(self, seq, attempt=0, trial_id=None):
        outcome = TrialOutcome(
            seq=seq, trial_id=trial_id or seq, attempt=attempt,
            status="completed", measurements={"reward": 1.0, "time": 10.0},
            worker=self.name,
        )
        send_frame(self.sock, {
            "type": "outcome", "seq": seq, "attempt": attempt,
            "payload": encode_payload(outcome),
        })

    def close(self):
        if self.sock is not None:
            self.sock.close()


class TestRejoinSemantics:
    def test_rejoin_within_grace_restores_the_inflight_task(self):
        sink = RingBufferSink()
        telem = Telemetry(sink)
        executor = RemoteExecutor(
            max_workers=1,
            heartbeat_timeout=0.5,
            policy=FleetPolicy(rejoin_grace_s=30.0),
            telemetry=telem,
        )
        fake = _FakeWorker(executor, session="s-rejoin")
        try:
            fake.connect()
            executor.submit(make_task(0))
            task_frame = fake.recv()
            assert task_frame["type"] == "task" and task_frame["seq"] == 0
            fake.close()  # vanish mid-trial: seq 0 goes to rejoin limbo
            deadline = time.monotonic() + 10.0
            while executor.n_workers and time.monotonic() < deadline:
                time.sleep(0.02)
            assert executor.fleet_state()["limbo"], "loss did not reach limbo"
            welcome = fake.connect(inflight=[0])  # same session: rejoin
            assert welcome.get("rejoin") is True
            fake.send_outcome(0)
            outcomes = []
            deadline = time.monotonic() + 10.0
            while not outcomes and time.monotonic() < deadline:
                outcomes = executor.poll(0.2)
            assert [o.status for o in outcomes] == ["completed"]
            assert outcomes[0].seq == 0
        finally:
            fake.close()
            executor.shutdown()
        assert len(sink.events(EVT_WORKER_REJOINED)) == 1

    def test_duplicate_outcome_after_rejoin_is_deduped(self):
        telem = Telemetry(RingBufferSink())
        executor = RemoteExecutor(max_workers=1, telemetry=telem)
        fake = _FakeWorker(executor, session="s-dup")
        try:
            fake.connect()
            executor.submit(make_task(0))
            assert fake.recv()["type"] == "task"
            fake.send_outcome(0)
            fake.send_outcome(0)  # a partition replay: same seq, same attempt
            outcomes = []
            deadline = time.monotonic() + 10.0
            while not outcomes and time.monotonic() < deadline:
                outcomes = executor.poll(0.2)
            assert len(outcomes) == 1
            # the duplicate must be counted, not committed
            deadline = time.monotonic() + 5.0
            while (
                telem.meters.snapshot()["counters"].get("net/dup_outcomes", 0) < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert telem.meters.snapshot()["counters"]["net/dup_outcomes"] == 1
            assert executor.poll(0.2) == []
        finally:
            fake.close()
            executor.shutdown()

    def test_requeued_task_is_fenced_against_the_stale_attempt(self):
        """Grace expires, the trial is crash-requeued to attempt 1; the
        original worker's late attempt-0 outcome must not commit."""
        executor = RemoteExecutor(
            max_workers=1,
            heartbeat_timeout=0.4,
            policy=FleetPolicy(rejoin_grace_s=0.0),
        )
        fake = _FakeWorker(executor, session="s-fence")
        try:
            fake.connect()
            executor.submit(make_task(0))
            assert fake.recv()["type"] == "task"
            fake.close()
            outcomes = []
            deadline = time.monotonic() + 10.0
            while not outcomes and time.monotonic() < deadline:
                outcomes = executor.poll(0.2)
            assert [o.status for o in outcomes] == ["crashed"]
            # the campaign's retry resubmits attempt 1; the stale
            # attempt-0 outcome from the rejoining worker must be dropped
            executor.submit(make_task(0, attempt=1))
            welcome = fake.connect(inflight=[])
            assert welcome.get("rejoin") is True
            assert fake.recv()["type"] == "task"
            fake.send_outcome(0, attempt=0)  # stale
            assert executor.poll(0.3) == []
            fake.send_outcome(0, attempt=1)  # current
            outcomes = []
            deadline = time.monotonic() + 10.0
            while not outcomes and time.monotonic() < deadline:
                outcomes = executor.poll(0.2)
            assert [(o.status, o.attempt) for o in outcomes] == [("completed", 1)]
        finally:
            fake.close()
            executor.shutdown()


# ------------------------------------------------------------- quarantine
class TestQuarantine:
    def test_flapping_worker_is_quarantined_and_not_dispatched_to(self):
        sink = RingBufferSink()
        telem = Telemetry(sink)
        executor = RemoteExecutor(
            max_workers=2,
            heartbeat_timeout=5.0,
            policy=FleetPolicy(
                min_workers=1,
                rejoin_grace_s=0.0,
                quarantine_flaps=2,
                quarantine_window=20,
            ),
            telemetry=telem,
        )
        flappy = _FakeWorker(executor, session="s-flap", name="flappy")
        try:
            for _ in range(2):  # two join/lost cycles trip the breaker
                flappy.connect()
                flappy.close()
                deadline = time.monotonic() + 10.0
                while executor.n_workers and time.monotonic() < deadline:
                    time.sleep(0.02)
            deadline = time.monotonic() + 5.0
            while (
                not sink.events(EVT_WORKER_QUARANTINED)
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert len(sink.events(EVT_WORKER_QUARANTINED)) == 1
            assert telem.meters.snapshot()["counters"]["net/quarantines"] == 1
            # the quarantined session may reconnect but gets no work
            flappy.connect()
            state = executor.fleet_state()
            [session] = [
                s for s in state["sessions"] if s["session"] == "s-flap"
            ]
            assert session["quarantined"] is True
            executor.submit(make_task(0))
            assert flappy.recv(timeout=0.5) is None  # no task dispatched
            assert state["live_workers"] == 0  # quarantined ≠ live
        finally:
            flappy.close()
            executor.shutdown()


# ----------------------------------------------------- fleet-loss policies
class TestFleetLossPolicies:
    def dead_fleet(self, policy, telemetry=None):
        executor = RemoteExecutor(
            max_workers=1, heartbeat_timeout=0.5, policy=policy,
            telemetry=telemetry,
        )
        fake = _FakeWorker(executor, session="s-loss")
        fake.connect()
        executor.wait_for_workers(1, timeout=5.0)
        fake.close()
        deadline = time.monotonic() + 10.0
        while executor.n_workers and time.monotonic() < deadline:
            time.sleep(0.02)
        return executor

    def test_fail_policy_raises_fleet_lost(self):
        executor = self.dead_fleet(
            FleetPolicy(min_workers=1, on_fleet_loss="fail", rejoin_grace_s=0.0)
        )
        try:
            with pytest.raises(FleetLostError, match="min_workers"):
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    executor.poll(0.2)
        finally:
            executor.shutdown()

    def test_wait_policy_degrades_without_failing_then_recovers(self):
        executor = self.dead_fleet(
            FleetPolicy(min_workers=1, on_fleet_loss="wait", rejoin_grace_s=0.0)
        )
        agent = None
        thread = None
        try:
            executor.submit(make_task(0))
            assert executor.poll(0.3) == []  # degraded but patient
            assert executor.fleet_state()["degraded"] is True
            host, port = executor.address
            agent = WorkerAgent(host, port, name="relief", log=_silent)
            thread = threading.Thread(target=agent.run, daemon=True)
            thread.start()
            outcomes = []
            deadline = time.monotonic() + 15.0
            while not outcomes and time.monotonic() < deadline:
                outcomes = executor.poll(0.2)
            assert [o.status for o in outcomes] == ["completed"]
            assert executor.fleet_state()["degraded"] is False
        finally:
            executor.shutdown()
            if thread is not None:
                thread.join(timeout=10.0)

    def test_local_policy_runs_pending_trials_in_process(self):
        telem = Telemetry(RingBufferSink())
        executor = self.dead_fleet(
            FleetPolicy(min_workers=1, on_fleet_loss="local", rejoin_grace_s=0.0),
            telemetry=telem,
        )
        try:
            executor.submit(make_task(0))
            executor.submit(make_task(1, trial_id=2))
            outcomes = []
            deadline = time.monotonic() + 15.0
            while len(outcomes) < 2 and time.monotonic() < deadline:
                outcomes.extend(executor.poll(0.2))
            assert sorted(o.seq for o in outcomes) == [0, 1]
            assert {o.status for o in outcomes} == {"completed"}
            assert {o.worker for o in outcomes} == {LOCAL_FALLBACK}
            counters = telem.meters.snapshot()["counters"]
            assert counters["net/local_trials"] == 2
        finally:
            executor.shutdown()

    def test_local_fallback_keeps_the_serial_fingerprint(self):
        """A whole campaign that loses its fleet mid-run and finishes on
        the local fallback must still fingerprint identically."""
        reference = campaign().run()
        executor = RemoteExecutor(
            max_workers=1,
            heartbeat_timeout=0.5,
            policy=FleetPolicy(
                min_workers=1, on_fleet_loss="local", rejoin_grace_s=0.0
            ),
        )
        host, port = executor.address
        agent = WorkerAgent(
            host, port, name="doomed", log=_silent, reconnect_retries=0
        )
        thread = threading.Thread(target=agent.run, daemon=True)
        thread.start()
        try:
            executor.wait_for_workers(1, timeout=10.0)

            def sever(study_done=[False]):
                # cut the worker's socket after its first completed trial
                deadline = time.monotonic() + 20.0
                while agent.n_executed < 1 and time.monotonic() < deadline:
                    time.sleep(0.02)
                stream = agent._stream
                if stream is not None:
                    stream.close()

            side = threading.Thread(target=sever, daemon=True)
            side.start()
            report = campaign(
                RemoteCaseStudy(sleep_s=0.15),
                executor=executor,
                retry=RetryPolicy(max_retries=3, backoff_s=0.0),
            ).run()
            side.join(timeout=10.0)
        finally:
            executor.shutdown()
            thread.join(timeout=10.0)
        assert report.meta["n_completed"] == 8
        assert table_fingerprint(report.table) == table_fingerprint(reference.table)
