"""Tests for the TPE sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Categorical, Configuration, Float, Integer, ParameterSpace, TPESampler


def quadratic_space():
    return ParameterSpace([Float("x", -5.0, 5.0)])


def drain_with_feedback(sampler, objective):
    history = []
    while True:
        config = sampler.ask()
        if config is None:
            return history
        value = objective(config)
        sampler.tell(config, {"value": value})
        history.append((config, value))


class TestTPEBasics:
    def test_budget_respected(self):
        sampler = TPESampler(quadratic_space(), n_trials=12, seed=0)
        history = drain_with_feedback(sampler, lambda c: c["x"] ** 2)
        assert len(history) == 12

    def test_startup_phase_is_random(self):
        sampler = TPESampler(quadratic_space(), n_trials=5, n_startup=5, seed=0)
        history = drain_with_feedback(sampler, lambda c: c["x"] ** 2)
        xs = [c["x"] for c, _ in history]
        assert len(set(xs)) == 5  # all distinct random draws

    def test_validation(self):
        with pytest.raises(ValueError):
            TPESampler(quadratic_space(), n_trials=0)
        with pytest.raises(ValueError):
            TPESampler(quadratic_space(), n_trials=5, gamma=0.0)

    def test_deterministic_given_seed(self):
        def run():
            sampler = TPESampler(quadratic_space(), n_trials=15, seed=3)
            return [c["x"] for c, _ in drain_with_feedback(sampler, lambda c: c["x"] ** 2)]

        assert run() == run()


class TestTPEConvergence:
    def test_beats_random_on_quadratic(self):
        """Model-based proposals must concentrate near the optimum."""
        from repro.core import RandomSearch

        def best_of(explorer_factory, seeds):
            bests = []
            for seed in seeds:
                explorer = explorer_factory(seed)
                values = [v for _, v in drain_with_feedback(explorer, lambda c: c["x"] ** 2)]
                bests.append(min(values))
            return float(np.mean(bests))

        seeds = range(6)
        tpe_best = best_of(
            lambda s: TPESampler(quadratic_space(), n_trials=40, seed=s, n_startup=8), seeds
        )
        rnd_best = best_of(
            lambda s: RandomSearch(quadratic_space(), n_trials=40, seed=s, dedupe=False),
            seeds,
        )
        assert tpe_best <= rnd_best * 1.05

    def test_late_proposals_concentrate(self):
        sampler = TPESampler(quadratic_space(), n_trials=60, seed=1, n_startup=10)
        history = drain_with_feedback(sampler, lambda c: c["x"] ** 2)
        early = [abs(c["x"]) for c, _ in history[:10]]
        late = [abs(c["x"]) for c, _ in history[-10:]]
        assert np.median(late) < np.median(early)

    def test_categorical_concentrates_on_good_choice(self):
        space = ParameterSpace([Categorical("algo", ["good", "bad", "ugly"])])
        scores = {"good": 0.0, "bad": 5.0, "ugly": 10.0}
        sampler = TPESampler(space, n_trials=60, seed=0, n_startup=10)
        history = drain_with_feedback(sampler, lambda c: scores[c["algo"]])
        late = [c["algo"] for c, _ in history[-20:]]
        assert late.count("good") > 12

    def test_integer_parameter(self):
        space = ParameterSpace([Integer("n", 1, 50)])
        sampler = TPESampler(space, n_trials=40, seed=2, n_startup=8)
        history = drain_with_feedback(sampler, lambda c: (c["n"] - 7) ** 2)
        late = [c["n"] for c, _ in history[-10:]]
        assert np.median(np.abs(np.array(late) - 7)) <= 12

    def test_log_float_parameter(self):
        space = ParameterSpace([Float("lr", 1e-5, 1e0, log=True)])
        sampler = TPESampler(space, n_trials=40, seed=4, n_startup=8)
        # optimum at 1e-3
        history = drain_with_feedback(
            sampler, lambda c: abs(np.log10(c["lr"]) + 3.0)
        )
        late = [c["lr"] for c, _ in history[-10:]]
        assert 1e-5 <= np.median(late) <= 1e-1

    def test_constraints_respected(self):
        space = ParameterSpace(
            [Categorical("n", [1, 2]), Categorical("fw", ["r", "s"])],
            constraints=[lambda v: v["n"] == 1 or v["fw"] == "r"],
        )
        sampler = TPESampler(space, n_trials=30, seed=0, n_startup=5)
        history = drain_with_feedback(sampler, lambda c: float(c["n"]))
        for config, _ in history:
            assert space.is_valid(config.as_dict())

    def test_custom_scalarization(self):
        space = quadratic_space()
        sampler = TPESampler(
            space,
            n_trials=30,
            seed=5,
            n_startup=8,
            scalarize=lambda objs: -objs["reward"],  # maximize reward
        )
        history = []
        while True:
            config = sampler.ask()
            if config is None:
                break
            reward = -(config["x"] - 2.0) ** 2
            sampler.tell(config, {"reward": reward})
            history.append((config, reward))
        late = [c["x"] for c, _ in history[-8:]]
        assert abs(np.median(late) - 2.0) < 2.0
