"""Tests for the wind/gust model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.airdrop import WindConfig, WindModel


class TestWindConfig:
    def test_disabled_wind_is_zero(self):
        cfg = WindConfig(enable_wind=False, wind_speed=10.0)
        assert np.allclose(cfg.mean_wind, 0.0)

    def test_enabled_wind_direction(self):
        cfg = WindConfig(enable_wind=True, wind_speed=4.0, wind_direction_deg=0.0)
        assert np.allclose(cfg.mean_wind, [4.0, 0.0])
        cfg = WindConfig(enable_wind=True, wind_speed=4.0, wind_direction_deg=90.0)
        assert np.allclose(cfg.mean_wind, [0.0, 4.0], atol=1e-12)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            WindConfig(gust_probability=1.5)

    def test_invalid_magnitudes(self):
        with pytest.raises(ValueError):
            WindConfig(wind_speed=-1.0)
        with pytest.raises(ValueError):
            WindConfig(gust_decay_s=0.0)


class TestWindModel:
    def test_no_gusts_when_disabled(self, rng):
        model = WindModel(WindConfig(enable_gusts=False, gust_probability=1.0))
        for _ in range(20):
            model.update(rng, 1.0)
        assert model.gust_count == 0
        assert np.allclose(model.current(), 0.0)

    def test_gusts_fire_at_probability(self, rng):
        model = WindModel(WindConfig(enable_gusts=True, gust_probability=0.5))
        n = 2000
        for _ in range(n):
            model.update(rng, 1.0)
        rate = model.gust_count / n
        assert 0.45 < rate < 0.55

    def test_gust_decays_exponentially(self, rng):
        cfg = WindConfig(enable_gusts=True, gust_probability=1.0, gust_decay_s=2.0)
        model = WindModel(cfg)
        model.update(rng, 1.0)  # fire one gust
        magnitude = np.linalg.norm(model.gust)
        model.config = WindConfig(enable_gusts=False, gust_decay_s=2.0)
        model.update(rng, 2.0)  # one decay constant
        assert np.isclose(np.linalg.norm(model.gust), magnitude * np.exp(-1.0), rtol=1e-9)

    def test_reset_clears_state(self, rng):
        model = WindModel(WindConfig(enable_gusts=True, gust_probability=1.0))
        model.update(rng, 1.0)
        assert model.gust_count == 1
        model.reset()
        assert model.gust_count == 0
        assert np.allclose(model.gust, 0.0)

    def test_invalid_dt(self, rng):
        model = WindModel()
        with pytest.raises(ValueError):
            model.update(rng, 0.0)

    def test_current_combines_mean_and_gust(self, rng):
        cfg = WindConfig(
            enable_wind=True,
            wind_speed=3.0,
            wind_direction_deg=0.0,
            enable_gusts=True,
            gust_probability=1.0,
        )
        model = WindModel(cfg)
        wind = model.update(rng, 1.0)
        assert not np.allclose(wind, [3.0, 0.0])  # gust added
        assert np.allclose(wind, cfg.mean_wind + model.gust)

    def test_deterministic_given_rng(self):
        cfg = WindConfig(enable_gusts=True, gust_probability=0.3)
        a = WindModel(cfg)
        b = WindModel(cfg)
        ra, rb = np.random.default_rng(5), np.random.default_rng(5)
        for _ in range(50):
            wa = a.update(ra, 1.0)
            wb = b.update(rb, 1.0)
            assert np.allclose(wa, wb)
