"""Failure-injection tests: the system degrades gracefully, not silently."""

from __future__ import annotations

import numpy as np
import pytest

import repro.airdrop  # noqa: F401
from repro.airdrop import AirdropEnv, ParafoilParams
from repro.core import (
    Campaign,
    Categorical,
    GridSearch,
    Metric,
    MetricSet,
    ParameterSpace,
    SortedTableRanking,
    TrialStatus,
)
from repro.envs import Box, Env, register
from repro.frameworks import EnvStepError, TrainSpec, get_framework
from repro.rl import (
    DivergenceError,
    PPOAgent,
    RolloutBatch,
    SACAgent,
    SACConfig,
    Transition,
)


class ExplodingEnv(Env):
    """Raises after a configurable number of steps."""

    def __init__(self, fuse: int = 50) -> None:
        self.observation_space = Box(-np.inf, np.inf, shape=(3,))
        self.action_space = Box(-1, 1, shape=(1,))
        self.fuse = fuse
        self.count = 0

    def reset(self, *, seed=None, options=None):
        super().reset(seed=seed)
        return np.zeros(3), {}

    def step(self, action):
        self.count += 1
        if self.count >= self.fuse:
            raise RuntimeError("hardware fault")
        return np.zeros(3), 0.0, False, True, {}


class TestEnvNumericalFailure:
    def test_nonfinite_state_terminates_episode(self):
        """A numerically destroyed package ends the episode with a large
        penalty instead of propagating NaNs into the learner."""
        env = AirdropEnv(rk_order=3)
        env.reset(seed=0)
        # corrupt the internal state to force a non-finite integration
        env._state[5] = np.inf
        with np.errstate(invalid="ignore", over="ignore"):
            obs, reward, term, trunc, info = env.step(np.zeros(1))
        assert term
        assert info.get("numerical_failure") is True
        assert reward == -10.0
        assert np.all(np.isfinite(obs))

    def test_extreme_parameters_stay_finite(self):
        """A violently unstable canopy configuration must still produce
        finite observations or a flagged failure — never silent NaNs."""
        params = ParafoilParams(roll_omega0=6.0, roll_zeta=0.01)
        env = AirdropEnv(rk_order=3, params=params)
        obs, _ = env.reset(seed=1)
        rng = np.random.default_rng(1)
        for _ in range(300):
            obs, reward, term, trunc, info = env.step(rng.uniform(-1, 1, 1))
            assert np.all(np.isfinite(obs))
            assert np.isfinite(reward)
            if term or trunc:
                break


class TestFrameworkFailurePropagation:
    def test_mid_training_env_crash_surfaces(self):
        register("Exploding-v0", ExplodingEnv, max_episode_steps=10, force=True)
        fw = get_framework("stable")
        spec = TrainSpec(
            algorithm="ppo", n_nodes=1, cores_per_node=2,
            env_id="Exploding-v0", env_kwargs={"fuse": 30},
            total_steps=500, eval_episodes=1,
        )
        with pytest.raises(RuntimeError, match="hardware fault"):
            fw.train(spec)

    def test_env_crash_is_typed_with_step_count(self):
        register("Exploding-v0", ExplodingEnv, max_episode_steps=10, force=True)
        fw = get_framework("stable")
        spec = TrainSpec(
            algorithm="ppo", n_nodes=1, cores_per_node=2,
            env_id="Exploding-v0", env_kwargs={"fuse": 30},
            total_steps=500, eval_episodes=1,
        )
        with pytest.raises(EnvStepError) as excinfo:
            fw.train(spec)
        exc = excinfo.value
        assert exc.extras["failure_stage"] == "env_step"
        assert exc.extras["env_error"] == "RuntimeError"
        # the fuse burns on the ~30th local step of one of the workers;
        # the recorded index is the global (across-workers) step count
        assert 0 < exc.extras["env_step"] <= 100

    def test_campaign_records_structured_env_failure(self):
        register("Exploding-v0", ExplodingEnv, max_episode_steps=10, force=True)

        class ExplodingStudy:
            def evaluate(self, config, seed, progress=None):
                spec = TrainSpec(
                    algorithm="ppo", n_nodes=1, cores_per_node=2,
                    env_id="Exploding-v0", env_kwargs={"fuse": 30},
                    total_steps=500, eval_episodes=1,
                )
                get_framework("stable").train(spec)
                return {"loss": 0.0}

        space = ParameterSpace([Categorical("x", [1])])
        report = Campaign(
            ExplodingStudy(),
            space,
            GridSearch(space),
            MetricSet([Metric(name="loss", direction="min")]),
        ).run()
        (failed,) = [t for t in report.table if not t.ok]
        assert failed.extras["failure_stage"] == "env_step"
        assert isinstance(failed.extras["env_step"], int)
        assert "hardware fault" in failed.extras["error"]


class TestDivergenceGuards:
    def test_ppo_nan_loss_raises_before_optimizer_step(self):
        agent = PPOAgent(3, 1, seed=0)
        n = 8
        batch = RolloutBatch(
            observations=np.zeros((n, 3)),
            actions=np.zeros((n, 1)),
            log_probs=np.zeros(n),
            advantages=np.full(n, np.nan),
            returns=np.zeros(n),
            values=np.zeros(n),
        )
        before = agent.actor.state_dict()
        with np.errstate(invalid="ignore"):
            with pytest.raises(DivergenceError) as excinfo:
                agent._update_minibatch(batch)
        assert excinfo.value.extras["failure_stage"] == "divergence"
        assert excinfo.value.extras["algorithm"] == "ppo"
        assert excinfo.value.extras["quantity"] == "policy_loss"
        # the optimizer never stepped: weights are untouched
        after = agent.actor.state_dict()
        assert all(np.array_equal(before[k], after[k]) for k in before)

    def test_sac_nan_reward_raises_before_optimizer_step(self):
        agent = SACAgent(2, 1, SACConfig(hidden_sizes=(16,)), seed=0)
        n = 4
        batch = Transition(
            observations=np.zeros((n, 2)),
            actions=np.zeros((n, 1)),
            rewards=np.full(n, np.nan),
            next_observations=np.zeros((n, 2)),
            terminations=np.zeros(n),
        )
        with np.errstate(invalid="ignore"):
            with pytest.raises(DivergenceError) as excinfo:
                agent._update_once(batch)
        assert excinfo.value.extras["algorithm"] == "sac"
        assert excinfo.value.extras["quantity"] == "q_loss"
        assert excinfo.value.extras["n_updates"] == 0


class TestCampaignQuarantinesFailures:
    def test_failing_trials_do_not_sink_the_campaign(self):
        class HalfBrokenStudy:
            def evaluate(self, config, seed, progress=None):
                if config["x"] % 2 == 0:
                    raise RuntimeError("node crash")
                return {"loss": float(config["x"])}

        space = ParameterSpace([Categorical("x", [1, 2, 3, 4])])
        campaign = Campaign(
            HalfBrokenStudy(),
            space,
            GridSearch(space),
            MetricSet([Metric(name="loss", direction="min")]),
            rankers=[SortedTableRanking("loss")],
        )
        report = campaign.run()
        statuses = [t.status for t in report.table]
        assert statuses.count(TrialStatus.FAILED) == 2
        assert statuses.count(TrialStatus.COMPLETED) == 2
        # rankings built from the survivors only
        ranking = next(iter(report.rankings.values()))
        assert all(t.ok for t in ranking.ordered)
        # failure forensics retained
        failed = [t for t in report.table if not t.ok]
        assert "node crash" in failed[0].extras["error"]
        assert "traceback" in failed[0].extras
