"""Tests for the Runge–Kutta integrators, including convergence orders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.airdrop.integrators import (
    DOP853,
    DOPRI5,
    RK23,
    ButcherTableau,
    available_orders,
    get_integrator,
    integrate_fixed,
)


class TestTableauStructure:
    @pytest.mark.parametrize("tab", [RK23, DOPRI5, DOP853])
    def test_consistency_conditions(self, tab):
        # Σ b_i = 1 (order 1) and Σ b_i c_i = 1/2 (order 2)
        assert np.isclose(tab.b.sum(), 1.0, atol=1e-12)
        assert np.isclose((tab.b * tab.c).sum(), 0.5, atol=1e-12)

    @pytest.mark.parametrize("tab", [RK23, DOPRI5, DOP853])
    def test_row_sum_equals_c(self, tab):
        # internal consistency: Σ_j a_ij = c_i for explicit RK
        assert np.allclose(tab.a.sum(axis=1), tab.c, atol=1e-12)

    def test_stage_counts_match_paper_cost_story(self):
        assert RK23.n_stages == 3
        assert DOPRI5.n_stages == 6
        assert DOP853.n_stages == 12

    def test_non_lower_triangular_rejected(self):
        with pytest.raises(ValueError):
            ButcherTableau(
                name="bad",
                order=1,
                error_order=None,
                a=np.array([[0.0, 1.0], [0.0, 0.0]]),
                b=np.array([0.5, 0.5]),
                c=np.array([0.0, 1.0]),
            )

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            ButcherTableau(
                name="bad",
                order=1,
                error_order=None,
                a=np.zeros((2, 2)),
                b=np.array([1.0]),
                c=np.array([0.0, 1.0]),
            )


class TestLookup:
    def test_available_orders(self):
        assert available_orders() == [3, 5, 8]

    @pytest.mark.parametrize("order,expected", [(3, "RK23"), (5, "DOPRI5"), (8, "DOP853")])
    def test_get_integrator(self, order, expected):
        assert get_integrator(order).name == expected

    def test_unknown_order_raises(self):
        with pytest.raises(ValueError):
            get_integrator(4)

    def test_adaptive_variants_have_error_weights(self):
        for order in available_orders():
            tab = get_integrator(order, adaptive=True)
            assert tab.e is not None


class TestAccuracy:
    def test_exact_on_linear_ode(self):
        # y' = const is integrated exactly by any consistent RK method
        rhs = lambda t, y: np.array([2.0])
        for order in available_orders():
            tab = get_integrator(order)
            y = tab.step(rhs, 0.0, np.array([1.0]), 0.5)
            assert np.isclose(y[0], 2.0, atol=1e-14)

    @pytest.mark.parametrize(
        "tab,expected_order", [(RK23, 3), (DOPRI5, 5), (DOP853, 8)]
    )
    def test_empirical_convergence_order(self, tab, expected_order):
        # y' = y, y(0)=1 → y(1) = e; halving h must cut the error ~2^order
        rhs = lambda t, y: y
        errors = []
        for h in (0.2, 0.1):
            y = np.array([1.0])
            t = 0.0
            while t < 1.0 - 1e-12:
                y = tab.step(rhs, t, y, h)
                t += h
            errors.append(abs(y[0] - np.e))
        observed = np.log2(errors[0] / errors[1])
        assert observed > expected_order - 0.7, (
            f"{tab.name}: observed order {observed:.2f} < {expected_order}"
        )

    def test_higher_order_is_more_accurate_on_oscillator(self):
        # the canopy-roll-like oscillator the env cares about
        def rhs(t, y):
            return np.array([y[1], -4.0 * np.sin(y[0]) - 0.2 * y[1]])

        errors = {}
        for order in available_orders():
            tab = get_integrator(order)
            y = np.array([0.5, 0.0])
            t = 0.0
            while t < 5.0 - 1e-12:
                y = tab.step(rhs, t, y, 0.25)
                t += 0.25
            ref = np.array([0.5, 0.0])
            tr = 0.0
            while tr < 5.0 - 1e-12:
                ref = DOP853.step(rhs, tr, ref, 0.25 / 64)
                tr += 0.25 / 64
            errors[order] = np.linalg.norm(y - ref)
        assert errors[3] > errors[5] > errors[8]


class TestAdaptive:
    def test_adaptive_step_controls_error(self):
        rhs = lambda t, y: y
        tab = get_integrator(5, adaptive=True)
        y, t, h_next, n_evals = tab.step_adaptive(rhs, 0.0, np.array([1.0]), 0.5, rtol=1e-8)
        assert np.isclose(y[0], np.exp(t), rtol=1e-6)
        assert n_evals >= tab.n_stages
        assert h_next > 0

    def test_adaptive_shrinks_on_stiff_segment(self):
        # fast transient: large initial h must be rejected and shrunk
        rhs = lambda t, y: -50.0 * y
        tab = get_integrator(3, adaptive=True)
        y, t, h_next, n_evals = tab.step_adaptive(
            rhs, 0.0, np.array([1.0]), 1.0, rtol=1e-6, atol=1e-9
        )
        assert t < 1.0  # the accepted step is smaller than requested
        assert n_evals > tab.n_stages  # at least one rejection

    def test_error_estimate_requires_embedded_pair(self):
        with pytest.raises(ValueError):
            RK23.error_estimate(np.zeros((3, 1)), 0.1)


class TestIntegrateFixed:
    def test_endpoint_exact(self):
        rhs = lambda t, y: np.array([1.0])
        res = integrate_fixed(rhs, (0.0, 1.0), np.array([0.0]), h=0.3, method=5)
        assert np.isclose(res.t[-1], 1.0)
        assert np.isclose(res.y_final[0], 1.0, atol=1e-12)

    def test_rhs_eval_count(self):
        rhs = lambda t, y: y
        res = integrate_fixed(rhs, (0.0, 1.0), np.array([1.0]), h=0.25, method=3)
        assert res.n_rhs_evals == 4 * 3  # 4 steps x 3 stages

    def test_invalid_span_raises(self):
        with pytest.raises(ValueError):
            integrate_fixed(lambda t, y: y, (1.0, 0.0), np.array([1.0]), h=0.1)

    def test_invalid_step_raises(self):
        with pytest.raises(ValueError):
            integrate_fixed(lambda t, y: y, (0.0, 1.0), np.array([1.0]), h=-0.1)

    def test_method_by_order_int(self):
        res = integrate_fixed(lambda t, y: y, (0.0, 0.5), np.array([1.0]), h=0.1, method=8)
        assert res.method == "DOP853"

    @given(st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=20, deadline=None)
    def test_exponential_accuracy_property(self, h):
        rhs = lambda t, y: -y
        res = integrate_fixed(rhs, (0.0, 1.0), np.array([1.0]), h=h, method=8)
        assert np.isclose(res.y_final[0], np.exp(-1.0), rtol=1e-6)
