"""Whole-program analysis tests: project model, concurrency rules, taint.

Four layers:

* fixtures — every concurrency rule RPR201–RPR205 must fire on its
  known-bad snippet with the expected count and stay silent on the
  matching good twin;
* taint — the interprocedural RPR001/RPR002 rules must catch the
  cross-file flow in ``lint_fixtures/taintpkg`` that the per-file rules
  provably miss (regression-tested in both directions);
* model — unit tests for the symbol table, call graph, Condition
  aliasing and the may/must lock fixpoints;
* surface — SARIF 2.1.0 output validates against a schema, the
  baseline ratchet round-trips, and ``--rules`` filtering reaches every
  rule family (per-file, model and contract alike).
"""

from __future__ import annotations

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    LintEngine,
    default_model_rules,
    default_project_rules,
    rule_table,
    sarif_payload,
)
from repro.analysis.baseline import (
    baseline_payload,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import FileContext
from repro.analysis.model import ProjectModel
from repro.analysis.report import report_payload
from repro.cli import main

FIXTURES = Path(__file__).parent / "lint_fixtures"
CONCURRENCY = FIXTURES / "concurrency"
TAINTPKG = FIXTURES / "taintpkg"
CONTRACTS_BAD = FIXTURES / "contracts_bad"


# -------------------------------------------------------- RPR2xx fixtures
RPR2XX_EXPECTATIONS = [
    ("rpr201_bad.py", "RPR201", 2),
    ("rpr202_bad.py", "RPR202", 1),
    ("rpr203_bad.py", "RPR203", 6),
    ("rpr204_bad.py", "RPR204", 2),
    ("rpr205_bad.py", "RPR205", 2),
]


@pytest.mark.parametrize("name, rule_id, n_expected", RPR2XX_EXPECTATIONS)
def test_concurrency_rule_fires_on_bad_fixture(name, rule_id, n_expected):
    report = LintEngine().run([CONCURRENCY / name])
    active = report.active()
    assert [f.rule for f in active] == [rule_id] * n_expected, [
        (f.rule, f.line, f.message) for f in active
    ]
    for finding in active:
        assert finding.line > 0 and finding.path.endswith(name)


@pytest.mark.parametrize(
    "name",
    [
        "rpr201_good.py",
        "rpr202_good.py",
        "rpr203_good.py",
        "rpr204_good.py",
        "rpr205_good.py",
    ],
)
def test_concurrency_rule_silent_on_good_twin(name):
    report = LintEngine().run([CONCURRENCY / name])
    assert report.active() == [], [
        (f.rule, f.line, f.message) for f in report.active()
    ]


def test_rpr201_finding_carries_spawn_to_mutation_trace():
    report = LintEngine().run([CONCURRENCY / "rpr201_bad.py"])
    traced = [f for f in report.active() if f.trace]
    assert traced, "RPR201 findings should carry a call trace"
    for finding in traced:
        assert any("_drain" in hop for hop in finding.trace), finding.trace


def test_rpr202_message_spells_out_the_cycle():
    report = LintEngine().run([CONCURRENCY / "rpr202_bad.py"])
    (finding,) = report.active()
    assert "lock-order cycle" in finding.message
    assert finding.message.count("->") >= 2  # A -> B -> A


def test_rule_table_covers_concurrency_rules():
    ids = {row[0] for row in rule_table()}
    assert {"RPR201", "RPR202", "RPR203", "RPR204", "RPR205"} <= ids
    for rule in default_model_rules():
        assert rule.rule_id in ids


# ------------------------------------------------- interprocedural taint
def test_per_file_rules_provably_miss_the_cross_file_taint():
    report = LintEngine(model_rules=[]).run([TAINTPKG])
    assert report.active() == [], [
        (f.rule, f.path, f.message) for f in report.active()
    ]


def test_taint_rules_catch_the_cross_file_flow_with_traces():
    report = LintEngine().run([TAINTPKG])
    by_rule = {f.rule: f for f in report.active()}
    assert sorted(by_rule) == ["RPR001", "RPR002"]
    assert by_rule["RPR001"].path.endswith("entropy.py")
    assert by_rule["RPR002"].path.endswith("clock.py")
    for finding in by_rule.values():
        # sink -> intermediate hop -> source, through two modules
        assert len(finding.trace) == 3, finding.trace
        assert finding.trace[0].endswith("cache_key")
        assert "digest sink" in finding.message


def test_json_payload_carries_the_trace():
    report = LintEngine().run([TAINTPKG])
    payload = report_payload(report)
    traces = [f["trace"] for f in payload["findings"] if f["trace"]]
    assert len(traces) == 2
    for trace in traces:
        assert isinstance(trace, list) and len(trace) == 3


# ------------------------------------------------------------ model units
def build_model(tmp_path: Path, files: dict[str, str]) -> ProjectModel:
    contexts = []
    for relative, source in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        source = textwrap.dedent(source)
        path.write_text(source)
        contexts.append(
            FileContext(
                path=str(path),
                source=source,
                tree=ast.parse(source),
                parts=path.parts,
            )
        )
    return ProjectModel.build(contexts)


def test_call_graph_links_cross_module_calls(tmp_path):
    model = build_model(
        tmp_path,
        {
            "alpha.py": """
            def helper():
                return 1
            """,
            "beta.py": """
            from alpha import helper

            def caller():
                return helper()
            """,
        },
    )
    edges = [callee for callee, _ in model.call_graph["beta.caller"]]
    assert edges == ["alpha.helper"]
    assert model.reachable_from(["beta.caller"]) == {
        "beta.caller",
        "alpha.helper",
    }
    assert model.call_path("beta.caller", "alpha.helper") == [
        "beta.caller",
        "alpha.helper",
    ]


def test_condition_aliases_the_lock_it_wraps(tmp_path):
    model = build_model(
        tmp_path,
        {
            "svc.py": """
            import threading

            class Svc:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition(self._lock)
            """,
        },
    )
    klass = model.classes["svc.Svc"]
    assert klass.lock_attrs["_cond"] == klass.lock_attrs["_lock"]


def test_must_entry_locks_survives_locked_helper_recursion(tmp_path):
    # _a_locked and _b_locked call each other; the only lock-free entry
    # is push(), which always holds the lock first — the intersection
    # fixpoint must conclude both helpers run under it.
    model = build_model(
        tmp_path,
        {
            "ring.py": """
            import threading

            class Ring:
                def __init__(self):
                    self._lock = threading.Lock()

                def push(self, item):
                    with self._lock:
                        self._a_locked(item)

                def _a_locked(self, item):
                    self._b_locked(item)

                def _b_locked(self, item):
                    if item:
                        self._a_locked(item - 1)
            """,
        },
    )
    members = [
        "ring.Ring.push",
        "ring.Ring._a_locked",
        "ring.Ring._b_locked",
    ]
    must = model.must_entry_locks(roots=["ring.Ring.push"], members=members)
    assert must["ring.Ring._a_locked"] == frozenset({"ring.Ring._lock"})
    assert must["ring.Ring._b_locked"] == frozenset({"ring.Ring._lock"})
    assert must["ring.Ring.push"] == frozenset()


def test_may_entry_locks_union_over_all_callers(tmp_path):
    model = build_model(
        tmp_path,
        {
            "mix.py": """
            import threading

            class Mix:
                def __init__(self):
                    self._lock = threading.Lock()

                def locked_caller(self):
                    with self._lock:
                        self._sink()

                def free_caller(self):
                    self._sink()

                def _sink(self):
                    pass
            """,
        },
    )
    may = model.may_entry_locks()
    assert may["mix.Mix._sink"] == frozenset({"mix.Mix._lock"})
    assert may["mix.Mix.free_caller"] == frozenset()


def test_thread_spawn_target_resolves_to_entry(tmp_path):
    model = build_model(
        tmp_path,
        {
            "spawner.py": """
            import threading

            class Spawner:
                def start(self):
                    self._t = threading.Thread(target=self._loop, daemon=True)
                    self._t.start()

                def _loop(self):
                    pass
            """,
        },
    )
    assert "spawner.Spawner._loop" in model.thread_entries
    (spawn,) = model.thread_entries["spawner.Spawner._loop"]
    assert spawn.daemon is True and spawn.resolved == "spawner.Spawner._loop"


# ------------------------------------------------------------------ SARIF
#: trimmed from the SARIF 2.1.0 schema — the properties repro emits,
#: with the same required/shape constraints the full schema imposes
SARIF_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {
                                                    "type": "string",
                                                    "pattern": "^RPR\\d{3}$",
                                                }
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "columnKind": {
                        "enum": ["utf16CodeUnits", "unicodeCodePoints"]
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message", "locations"],
                            "properties": {
                                "ruleId": {
                                    "type": "string",
                                    "pattern": "^RPR\\d{3}$",
                                },
                                "ruleIndex": {"type": "integer", "minimum": 0},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": [
                                                    "artifactLocation",
                                                    "region",
                                                ],
                                                "properties": {
                                                    "region": {
                                                        "type": "object",
                                                        "required": [
                                                            "startLine"
                                                        ],
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    }
                                                },
                                            }
                                        },
                                    },
                                },
                                "suppressions": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["kind"],
                                        "properties": {
                                            "kind": {
                                                "enum": [
                                                    "inSource",
                                                    "external",
                                                ]
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def test_sarif_validates_against_2_1_0_schema():
    jsonschema = pytest.importorskip("jsonschema")
    report = LintEngine().run([CONCURRENCY, TAINTPKG])
    payload = sarif_payload(report)
    jsonschema.validate(payload, SARIF_SCHEMA)
    run = payload["runs"][0]
    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(set(rule_ids)), "driver.rules must be unique"
    for result in run["results"]:
        # ruleIndex must point at the matching driver.rules entry
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]


def test_sarif_traced_findings_become_code_flows():
    report = LintEngine().run([TAINTPKG])
    payload = sarif_payload(report)
    flows = [r for r in payload["runs"][0]["results"] if "codeFlows" in r]
    assert len(flows) == 2
    for result in flows:
        locations = result["codeFlows"][0]["threadFlows"][0]["locations"]
        assert len(locations) == 3  # sink -> hop -> source


def test_sarif_suppressed_findings_carry_justification(tmp_path):
    source = (
        "import time\n"
        "t = time.time()  # repro-lint: disable=RPR002 -- span timing only\n"
    )
    scoped = tmp_path / "frameworks"  # inside RPR002's package scope
    scoped.mkdir()
    path = scoped / "suppressed.py"
    path.write_text(source)
    report = LintEngine().run([path])
    payload = sarif_payload(report)
    suppressed = [
        r for r in payload["runs"][0]["results"] if r.get("suppressions")
    ]
    assert suppressed, "suppressed finding should still appear in SARIF"
    (entry,) = suppressed[0]["suppressions"]
    assert entry["kind"] == "inSource"
    assert "span timing" in entry["justification"]


# --------------------------------------------------------------- baseline
def test_baseline_round_trips_and_diffs_clean(tmp_path):
    report = LintEngine().run([CONCURRENCY / "rpr201_bad.py"])
    path = tmp_path / "baseline.json"
    write_baseline(report, path)
    allowed = load_baseline(path)
    assert sum(allowed.values()) == len(report.active())
    assert diff_against_baseline(report, allowed) == []


def test_baseline_identity_ignores_line_numbers(tmp_path):
    # the ratchet keys on (rule, path, message), not line numbers: moving
    # a known finding down the file must not count as new
    original = (CONCURRENCY / "rpr204_bad.py").read_text()
    target = tmp_path / "rpr204_shift.py"
    target.write_text(original)
    path = tmp_path / "baseline.json"
    write_baseline(LintEngine().run([target]), path)
    target.write_text("# a comment pushing every line down\n" + original)
    shifted = LintEngine().run([target])
    assert shifted.active(), "fixture must still fire after the shift"
    assert diff_against_baseline(shifted, load_baseline(path)) == []


def test_baseline_flags_only_genuinely_new_findings(tmp_path):
    known = LintEngine().run([CONCURRENCY / "rpr204_bad.py"])
    path = tmp_path / "baseline.json"
    write_baseline(known, path)
    wider = LintEngine().run(
        [CONCURRENCY / "rpr204_bad.py", CONCURRENCY / "rpr205_bad.py"]
    )
    new = diff_against_baseline(wider, load_baseline(path))
    assert [f.rule for f in new] == ["RPR205", "RPR205"]
    assert all(f.path.endswith("rpr205_bad.py") for f in new)


def test_baseline_payload_is_stable_ordered(tmp_path):
    report = LintEngine().run([CONCURRENCY])
    payload = baseline_payload(report)
    keys = [(e["rule"], e["path"], e["message"]) for e in payload["entries"]]
    assert keys == sorted(keys)
    assert payload["format_version"] == 1


def test_baseline_rejects_unknown_format_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"format_version": 99, "entries": []}))
    with pytest.raises(ValueError):
        load_baseline(path)


def test_committed_repo_baseline_is_empty_and_current():
    repo_root = Path(__file__).resolve().parents[1]
    baseline = repo_root / "lint-baseline.json"
    assert baseline.is_file(), "lint-baseline.json must be committed"
    assert load_baseline(baseline) == {}, (
        "the committed baseline must stay empty: fix or suppress new "
        "findings instead of baselining them"
    )


# -------------------------------------------------------------- CLI surface
def test_cli_rules_filter_silences_model_rules(capsys):
    bad = str(CONCURRENCY / "rpr201_bad.py")
    assert main(["lint", bad, "--no-contracts", "--rules", "RPR202"]) == 0
    assert main(["lint", bad, "--no-contracts", "--rules", "RPR201"]) == 1
    capsys.readouterr()


def test_cli_rules_filter_applies_to_contract_rules(capsys):
    tree = str(CONTRACTS_BAD)
    assert main(["lint", tree, "--rules", "RPR101", "--format", "json"]) == 1
    decoded = json.loads(capsys.readouterr().out)
    rules = {f["rule"] for f in decoded["findings"]}
    assert rules == {"RPR101"}, rules
    assert main(["lint", tree, "--rules", "RPR102", "--format", "json"]) == 1
    decoded = json.loads(capsys.readouterr().out)
    assert {f["rule"] for f in decoded["findings"]} == {"RPR102"}


def test_cli_baseline_ratchet_exit_codes(tmp_path, capsys):
    bad = str(CONCURRENCY / "rpr201_bad.py")
    baseline = str(tmp_path / "baseline.json")
    # ratchet flags without --baseline is a usage error
    assert main(["lint", bad, "--no-contracts", "--fail-on-new"]) == 2
    # --fail-on-new against a missing baseline is a usage error too
    assert main(
        ["lint", bad, "--no-contracts", "--baseline", baseline, "--fail-on-new"]
    ) == 2
    # writing the baseline exits 0 even with active findings
    assert main(
        ["lint", bad, "--no-contracts", "--baseline", baseline,
         "--write-baseline"]
    ) == 0
    # same findings against the fresh baseline: known, not new
    assert main(
        ["lint", bad, "--no-contracts", "--baseline", baseline, "--fail-on-new"]
    ) == 0
    out = capsys.readouterr().out
    assert "2 known finding(s), 0 new" in out


def test_cli_rules_filter_composes_with_fail_on_new(tmp_path, capsys):
    bad = str(CONCURRENCY / "rpr201_bad.py")
    baseline = str(tmp_path / "empty.json")
    # baseline written under a filter that matches nothing is empty
    assert main(
        ["lint", bad, "--no-contracts", "--rules", "RPR202",
         "--baseline", baseline, "--write-baseline"]
    ) == 0
    assert load_baseline(baseline) == {}
    # filtered run against the empty baseline stays green
    assert main(
        ["lint", bad, "--no-contracts", "--rules", "RPR202",
         "--baseline", baseline, "--fail-on-new"]
    ) == 0
    # widening the filter surfaces the RPR201 findings as new
    assert main(
        ["lint", bad, "--no-contracts", "--rules", "RPR201",
         "--baseline", baseline, "--fail-on-new"]
    ) == 1
    assert "NEW" in capsys.readouterr().out


def test_cli_sarif_artifact_and_format(tmp_path, capsys):
    bad = str(CONCURRENCY / "rpr203_bad.py")
    artifact = tmp_path / "lint.sarif"
    code = main(
        ["lint", bad, "--no-contracts", "--sarif", str(artifact)]
    )
    assert code == 1
    decoded = json.loads(artifact.read_text())
    assert decoded["version"] == "2.1.0"
    assert len(decoded["runs"][0]["results"]) == 6
    capsys.readouterr()
    assert main(["lint", bad, "--no-contracts", "--format", "sarif"]) == 1
    streamed = json.loads(capsys.readouterr().out)
    assert streamed["runs"][0]["results"] == decoded["runs"][0]["results"]
