"""Cross-cutting property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSimulator, paper_testbed
from repro.core import non_dominated_mask
from repro.rl import compute_gae


class TestClusterSimulatorProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_dag_respects_dependencies(self, seed):
        rng = np.random.default_rng(seed)
        sim = ClusterSimulator(paper_testbed(2))
        tasks = []
        edges = []
        for i in range(30):
            n_deps = int(rng.integers(0, min(3, len(tasks)) + 1))
            deps = (
                [tasks[j] for j in rng.choice(len(tasks), size=n_deps, replace=False)]
                if tasks and n_deps
                else []
            )
            if rng.random() < 0.25 and deps:
                t = sim.transfer(f"x{i}", int(rng.integers(2)), int(rng.integers(2)),
                                 float(rng.uniform(0, 1e6)), deps=deps)
            else:
                t = sim.task(f"t{i}", int(rng.integers(2)), float(rng.uniform(0.0, 2.0)),
                             cores=int(rng.integers(1, 5)), deps=deps)
            for d in deps:
                edges.append((d, t))
            tasks.append(t)
        sim.run()
        # every dependency finished before its dependent started
        for dep, task in edges:
            assert dep.end_time is not None and task.start_time is not None
            assert dep.end_time <= task.start_time + 1e-9
        # every task ran
        assert all(t.done for t in tasks)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_makespan_bounds(self, seed):
        """Makespan is at least the per-node work bound and at most the
        serial sum of all durations."""
        rng = np.random.default_rng(seed)
        sim = ClusterSimulator(paper_testbed(2))
        durations = []
        node_work = {0: 0.0, 1: 0.0}
        for i in range(20):
            node = int(rng.integers(2))
            cores = int(rng.integers(1, 5))
            duration = float(rng.uniform(0.1, 2.0))
            sim.task(f"t{i}", node, duration, cores=cores)
            durations.append(duration)
            node_work[node] += duration * cores
        trace = sim.run()
        lower = max(work / 4.0 for work in node_work.values())
        assert trace.makespan >= lower - 1e-9
        assert trace.makespan <= sum(durations) + 1e-9


class TestGAEProperties:
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_mc_returns_match_suffix_sums(self, seed, T):
        """With gamma=1, lam=1, zero values and a terminal at the end, the
        returns are exactly the undiscounted reward-to-go."""
        rng = np.random.default_rng(seed)
        rewards = rng.standard_normal((T, 1))
        values = np.zeros((T, 1))
        terms = np.zeros((T, 1))
        terms[-1] = 1.0
        adv, ret = compute_gae(rewards, values, terms, np.array([123.0]), 1.0, 1.0)
        expected = np.cumsum(rewards[::-1])[::-1]
        assert np.allclose(ret[:, 0], expected)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_gae_interpolates_between_td_and_mc(self, seed):
        """For every t: min(td, mc) <= gae(lam) <= max(td, mc) is not a
        strict identity, but the lam=0/1 endpoints must match exactly."""
        rng = np.random.default_rng(seed)
        T = 8
        rewards = rng.standard_normal((T, 1))
        values = rng.standard_normal((T, 1))
        terms = np.zeros((T, 1))
        last = rng.standard_normal(1)

        adv0, _ = compute_gae(rewards, values, terms, last, 0.97, 0.0)
        next_vals = np.vstack([values[1:], last[None]])
        td = rewards + 0.97 * next_vals - values
        assert np.allclose(adv0, td)

        adv1, ret1 = compute_gae(rewards, values, terms, last, 1.0, 1.0)
        # lam=1, gamma=1: return_t = sum_{k>=t} r_k + last_value
        expected = np.cumsum(rewards[::-1])[::-1] + last[0]
        assert np.allclose(ret1[:, 0], expected)


class TestParetoProperties:
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_front_idempotent(self, seed, n):
        pts = np.random.default_rng(seed).standard_normal((n, 2))
        mask = non_dominated_mask(pts, ["min", "min"])
        front = pts[mask]
        mask2 = non_dominated_mask(front, ["min", "min"])
        assert mask2.all()

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_adding_dominated_point_keeps_front(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.standard_normal((10, 2))
        mask = non_dominated_mask(pts, ["min", "min"])
        worst = pts.max(axis=0) + 1.0  # dominated by everything
        extended = np.vstack([pts, worst])
        mask2 = non_dominated_mask(extended, ["min", "min"])
        assert not mask2[-1]
        assert np.array_equal(mask, mask2[:-1])

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_direction_flip_symmetry(self, seed):
        pts = np.random.default_rng(seed).standard_normal((12, 2))
        mask_min = non_dominated_mask(pts, ["min", "min"])
        mask_max = non_dominated_mask(-pts, ["max", "max"])
        assert np.array_equal(mask_min, mask_max)
