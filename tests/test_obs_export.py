"""Tests for the Chrome trace exporter, including the golden structure test.

Regenerate the golden expectation after an intentional format change with::

    PYTHONPATH=src:. python tests/test_obs_export.py --regen
"""

from __future__ import annotations

import json
import pathlib

from repro.cluster import Trace
from repro.cluster.trace import TaskSpan, TransferSpan
from repro.core import Campaign, Categorical, GridSearch, Metric, MetricSet, ParameterSpace
from repro.obs import (
    RingBufferSink,
    Telemetry,
    chrome_trace,
    export_chrome,
    load_records,
    span_tree,
    summarize,
    validate_chrome_trace,
)

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_trace.json"


def toy_trace() -> Trace:
    return Trace(
        tasks=[
            TaskSpan("rollout[0]w0", 0, 1, 0.0, 1.0),
            TaskSpan("rollout[0]w1", 1, 1, 0.0, 1.2),
            TaskSpan("ppo_update[0]", 0, 2, 1.2, 1.7),
        ],
        transfers=[TransferSpan("weights[0]n1", 0, 1, 1e6, 1.7, 1.9)],
    )


class GoldenCaseStudy:
    """Deterministic study that exercises spans and virtual-time records."""

    def evaluate(self, config, seed, progress=None, telemetry=None):
        telem = Telemetry.or_null(telemetry)
        with telem.span("rollout", iteration=0):
            pass
        with telem.span("update", iteration=0):
            pass
        telem.emit_records(toy_trace().to_records(framework="golden"))
        return {"reward": float(config["quality"]), "time": 1.0}


def golden_records() -> list[dict]:
    """Run the deterministic 2-trial campaign and return its records."""
    space = ParameterSpace([Categorical("quality", [1, 2])])
    sink = RingBufferSink()
    Campaign(
        GoldenCaseStudy(),
        space,
        GridSearch(space),
        MetricSet([Metric(name="reward", direction="max"),
                   Metric(name="time", direction="min")]),
        telemetry=Telemetry(sink),
    ).run()
    return sink.records


def normalized(records: list[dict]) -> dict:
    """Timestamp-free view: span nesting + (name, ph, cat, track) sequence."""
    payload = chrome_trace(records)
    tracks = {(0, 1, 1): "campaign"}
    for ev in payload["traceEvents"]:
        if ev["ph"] == "M" and ev["name"] == "thread_name":
            tracks[(0, ev["pid"], ev["tid"])] = ev["args"]["name"]

    def strip(node):
        return {
            "name": node["name"],
            "fields": node["fields"],
            "children": [strip(c) for c in node["children"]],
        }

    return {
        "span_tree": [strip(n) for n in span_tree(records)],
        "trace_events": [
            {
                "name": ev["name"],
                "ph": ev["ph"],
                "cat": ev.get("cat"),
                "track": tracks[(0, ev["pid"], ev["tid"])],
            }
            for ev in payload["traceEvents"]
            if ev["ph"] in ("X", "i")
        ],
    }


class TestTraceRecords:
    def test_to_records_shapes(self):
        records = toy_trace().to_records(framework="fw")
        tasks = [r for r in records if r["kind"] == "task"]
        transfers = [r for r in records if r["kind"] == "transfer"]
        assert len(tasks) == 3 and len(transfers) == 1
        assert all(r["type"] == "vspan" and r["framework"] == "fw" for r in records)
        assert transfers[0]["src"] == 0 and transfers[0]["dst"] == 1
        assert tasks[0]["end"] - tasks[0]["start"] == 1.0


class TestChromeTrace:
    def test_trace_is_schema_clean(self):
        payload = chrome_trace(golden_records())
        assert validate_chrome_trace(payload) == []

    def test_validator_flags_problems(self):
        assert validate_chrome_trace({"traceEvents": "nope"})
        bad = {"traceEvents": [{"ph": "X", "name": "n", "pid": 1, "tid": 1, "ts": 0}]}
        assert any("dur" in p for p in validate_chrome_trace(bad))
        assert validate_chrome_trace({"traceEvents": [{"ph": "Z"}]})

    def test_real_and_virtual_clocks_get_separate_processes(self):
        payload = chrome_trace(golden_records())
        names = {
            ev["pid"]: ev["args"]["name"]
            for ev in payload["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert names == {1: "real-time (host)", 2: "virtual-time (cluster sim)"}
        real = [ev for ev in payload["traceEvents"] if ev["ph"] == "X" and ev["pid"] == 1]
        virtual = [ev for ev in payload["traceEvents"] if ev["ph"] == "X" and ev["pid"] == 2]
        assert {ev["name"] for ev in real} >= {"trial", "rollout", "update"}
        assert {ev["name"] for ev in virtual} == {
            "rollout[0]w0", "rollout[0]w1", "ppo_update[0]", "weights[0]n1"
        }

    def test_virtual_tracks_split_by_trial_node_and_link(self):
        payload = chrome_trace(golden_records())
        labels = {
            ev["args"]["name"]
            for ev in payload["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name" and ev["pid"] == 2
        }
        assert labels == {
            "trial 1 · node 0", "trial 1 · node 1", "trial 1 · link 0→1",
            "trial 2 · node 0", "trial 2 · node 1", "trial 2 · link 0→1",
        }

    def test_real_timestamps_rebased_to_zero(self):
        payload = chrome_trace(golden_records())
        real_ts = [
            ev["ts"] for ev in payload["traceEvents"]
            if ev["ph"] in ("X", "i") and ev["pid"] == 1
        ]
        assert min(real_ts) == 0.0

    def test_export_writes_loadable_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        payload = export_chrome(golden_records(), path)
        with open(path) as handle:
            on_disk = json.load(handle)
        assert on_disk["traceEvents"] == json.loads(json.dumps(payload["traceEvents"]))
        assert on_disk["displayTimeUnit"] == "ms"

    def test_summarize_smoke(self):
        text = summarize(golden_records())
        assert "events" in text and "span" in text and "virtual time" in text


class TestGoldenTrace:
    """Span names, track assignments and nesting are pinned by a golden file."""

    def test_matches_checked_in_expectation(self):
        expected = json.loads(GOLDEN_PATH.read_text())
        assert normalized(golden_records()) == expected

    def test_one_top_level_span_per_trial_with_phase_children(self):
        tree = span_tree(golden_records())
        assert [n["name"] for n in tree] == ["trial", "trial"]
        for node in tree:
            assert [c["name"] for c in node["children"]] == ["rollout", "update"]


class TestJsonlEndToEnd:
    def test_log_file_round_trips_through_exporter(self, tmp_path):
        from repro.obs import JsonlSink

        space = ParameterSpace([Categorical("quality", [1, 2])])
        log = str(tmp_path / "log.jsonl")
        telem = Telemetry(JsonlSink(log))
        Campaign(
            GoldenCaseStudy(), space, GridSearch(space),
            MetricSet([Metric(name="reward", direction="max"),
                       Metric(name="time", direction="min")]),
            telemetry=telem,
        ).run()
        telem.close()
        records = load_records(log)
        out = str(tmp_path / "trace.json")
        payload = export_chrome(records, out)
        assert validate_chrome_trace(payload) == []
        assert normalized(records) == json.loads(GOLDEN_PATH.read_text())


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(normalized(golden_records()), indent=1) + "\n")
        print(f"regenerated {GOLDEN_PATH}")
