"""Tests for the fault-injection & resilience layer (repro.faults).

Covers the plan format (round-trip, hashing, validation, seeded
sampling), the simulator's fault semantics (crash/restart, stragglers,
link degradation, probabilistic task failures, recovery policies), the
framework back-ends' recovery behavior, the resilience metrics and
Pareto axis at campaign level, the cross-executor determinism of the
whole fault path, journal identity pinning, and the Perfetto fault lane.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import ClusterSimulator, paper_testbed
from repro.core import (
    Campaign,
    Categorical,
    GridSearch,
    Metric,
    MetricSet,
    ParameterSpace,
    ParetoFrontRanking,
    TrialStatus,
)
from repro.core.serialization import table_fingerprint
from repro.exec import CampaignJournal, JournalMismatch, RetryPolicy
from repro.faults import (
    ClusterFaultError,
    DegradeRecovery,
    FailFastRecovery,
    FaultPlan,
    LinkDegradation,
    NodeCrash,
    ReDispatchRecovery,
    Straggler,
    TaskFailures,
)
from repro.frameworks import TrainSpec, get_framework
from repro.obs.export import chrome_trace, validate_chrome_trace


# --------------------------------------------------------------- fixtures
# module-level so everything pickles for the process executor
CHAOS_PLAN = FaultPlan(
    node_crashes=(NodeCrash(node=1, at=2.0, restart_after=4.0),),
    stragglers=(Straggler(node=0, at=1.0, duration=3.0, factor=2.0),),
    link_faults=(LinkDegradation(at=0.5, duration=2.0, bandwidth_factor=0.5),),
    task_failures=TaskFailures(rate=0.2, seed=11, max_attempts=3),
    name="chaos",
)

#: kills node 1 early and never restarts it — configs using node 1 die
CRASH_NODE1_PLAN = FaultPlan(node_crashes=(NodeCrash(node=1, at=0.5),))


class FaultSimCaseStudy:
    """Pure virtual-cluster workload: fast, deterministic, picklable.

    Runs the same pipeline DAG on a clean simulator and on one under
    ``fault_plan``, and reports the resilience axis alongside the usual
    decision metrics. ``policy`` selects the recovery behavior;
    ``fail_fast`` aborts surface as :class:`ClusterFaultError` exactly
    like the Stable-Baselines back-end.
    """

    def __init__(self, fault_plan=None, policy="redispatch", interrupt_at=None):
        self.fault_plan = fault_plan
        self.policy = policy
        self.interrupt_at = interrupt_at
        self.evaluated = []

    def _recovery(self):
        if self.policy == "fail_fast":
            return FailFastRecovery()
        if self.policy == "degrade":
            return DegradeRecovery()
        return ReDispatchRecovery(nodes=(0, 1), restore_s=1.0)

    def _build(self, sim, depth, duration, wide):
        prev = None
        for i in range(depth):
            deps = [prev] if prev is not None else []
            a = sim.task(f"stage{i}/a", node=0, duration=duration, deps=deps)
            merge_deps = [a]
            if wide:
                b = sim.task(f"stage{i}/b", node=1, duration=duration, deps=deps)
                merge_deps.append(
                    sim.transfer(f"stage{i}/ship", 1, 0, n_bytes=5e8, deps=[b])
                )
            prev = sim.task(
                f"stage{i}/reduce", node=0, duration=duration / 2, deps=merge_deps
            )

    def evaluate(self, config, seed, progress=None):
        self.evaluated.append(config)
        if self.interrupt_at is not None and config.trial_id == self.interrupt_at:
            raise KeyboardInterrupt
        depth, wide = int(config["depth"]), bool(config["wide"])
        clean = ClusterSimulator(paper_testbed(2))
        self._build(clean, depth, 1.0, wide)
        clean.run()
        sim = ClusterSimulator(
            paper_testbed(2), faults=self.fault_plan, recovery=self._recovery()
        )
        self._build(sim, depth, 1.0, wide)
        sim.run()
        if sim.stats is not None and sim.stats.aborted and self.policy == "fail_fast":
            raise ClusterFaultError(
                sim.stats.abort_reason,
                extras={"failure_stage": "cluster_fault",
                        "abort_time_s": sim.stats.abort_time},
            )
        makespan = sim.trace.makespan
        return {
            "reward": -makespan,
            "computation_time": makespan,
            "recovery_overhead": makespan - clean.trace.makespan,
        }


def sim_space():
    return ParameterSpace(
        [Categorical("depth", [2, 3, 4]), Categorical("wide", [False, True])]
    )


def sim_metrics():
    return MetricSet(
        [
            Metric(name="reward", direction="max"),
            Metric(name="computation_time", direction="min"),
            Metric(name="recovery_overhead", direction="min"),
        ]
    )


def sim_campaign(study, **kwargs):
    space = sim_space()
    kwargs.setdefault(
        "rankers",
        [ParetoFrontRanking(
            ["reward", "computation_time", "recovery_overhead"], name="resilience"
        )],
    )
    return Campaign(study, space, GridSearch(space), sim_metrics(), **kwargs)


# -------------------------------------------------------------- the plan
class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        CHAOS_PLAN.save(path)
        loaded = FaultPlan.load(path)
        assert loaded == CHAOS_PLAN
        assert loaded.plan_hash() == CHAOS_PLAN.plan_hash()

    def test_hash_ignores_cosmetic_name(self):
        renamed = FaultPlan.from_dict({**CHAOS_PLAN.to_dict(), "name": "other"})
        assert renamed.plan_hash() == CHAOS_PLAN.plan_hash()
        assert renamed != CHAOS_PLAN  # the name still distinguishes objects

    def test_hash_tracks_semantics(self):
        shifted = FaultPlan(node_crashes=(NodeCrash(node=1, at=3.0, restart_after=4.0),))
        base = FaultPlan(node_crashes=(NodeCrash(node=1, at=2.0, restart_after=4.0),))
        assert shifted.plan_hash() != base.plan_hash()

    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.n_events == 0
        assert not CHAOS_PLAN.is_empty

    def test_validate_rejects_out_of_range_node(self):
        plan = FaultPlan(node_crashes=(NodeCrash(node=5, at=1.0),))
        plan.validate()  # fine without a cluster size
        with pytest.raises(ValueError, match="node 5"):
            plan.validate(n_nodes=2)

    def test_validate_rejects_bad_events(self):
        with pytest.raises(ValueError):
            Straggler(node=0, at=0.0, duration=1.0, factor=0.5).validate()
        with pytest.raises(ValueError):
            LinkDegradation(at=0.0, duration=1.0).validate()
        with pytest.raises(ValueError):
            TaskFailures(rate=1.5).validate()

    def test_sample_is_seed_deterministic(self):
        one = FaultPlan.sample(seed=5, n_nodes=2, horizon_s=100.0)
        two = FaultPlan.sample(seed=5, n_nodes=2, horizon_s=100.0)
        other = FaultPlan.sample(seed=6, n_nodes=2, horizon_s=100.0)
        assert one.plan_hash() == two.plan_hash()
        assert one.plan_hash() != other.plan_hash()
        one.validate(n_nodes=2)

    def test_describe_mentions_every_event(self):
        text = CHAOS_PLAN.describe()
        for word in ("crash", "straggler", "bandwidth", "failures"):
            assert word in text


# --------------------------------------------------------- sim semantics
class TestSimulatorFaults:
    def test_empty_plan_is_byte_identical(self):
        def build(sim):
            a = sim.task("a", 0, 2.0)
            b = sim.task("b", 1, 3.0, deps=[a])
            sim.transfer("x", 1, 0, n_bytes=1e8, deps=[b])

        plain = ClusterSimulator(paper_testbed(2))
        build(plain)
        plain.run()
        empty = ClusterSimulator(paper_testbed(2), faults=FaultPlan())
        build(empty)
        empty.run()
        assert plain.trace.to_records() == empty.trace.to_records()
        assert empty.stats is None  # the whole fault path is disabled

    def test_crash_with_restart_degrades(self):
        plan = FaultPlan(node_crashes=(NodeCrash(node=0, at=4.0, restart_after=3.0),))
        sim = ClusterSimulator(paper_testbed(2), faults=plan, recovery=DegradeRecovery())
        t = sim.task("work", node=0, duration=10.0)
        sim.run()
        # 4s of progress lost, node back at t=7, full re-run ends at 17
        assert t.end_time == pytest.approx(17.0)
        assert sim.stats.work_lost_s == pytest.approx(4.0)
        assert sim.stats.n_killed == 1
        assert sim.stats.n_restarts == 1
        assert not sim.stats.aborted
        killed = [s for s in sim.trace.tasks if s.name.endswith("(killed)")]
        assert len(killed) == 1 and killed[0].end == pytest.approx(4.0)

    def test_straggler_slows_remaining_work(self):
        plan = FaultPlan(stragglers=(Straggler(node=0, at=2.0, duration=100.0, factor=2.0),))
        sim = ClusterSimulator(paper_testbed(2), faults=plan)
        t = sim.task("work", node=0, duration=10.0)
        sim.run()
        assert t.end_time == pytest.approx(18.0)  # 2 @1x + 8 nominal @2x

    def test_straggler_window_end_restores_speed(self):
        plan = FaultPlan(stragglers=(Straggler(node=0, at=2.0, duration=2.0, factor=2.0),))
        sim = ClusterSimulator(paper_testbed(2), faults=plan)
        t = sim.task("work", node=0, duration=10.0)
        sim.run()
        # [2,4) at 2x accrues 1 nominal second; 7 remain at full speed
        assert t.end_time == pytest.approx(11.0)

    def test_link_degradation_recosts_transfer(self):
        plan = FaultPlan(
            link_faults=(LinkDegradation(at=0.0, duration=100.0, bandwidth_factor=0.5),)
        )
        degraded = ClusterSimulator(paper_testbed(2), faults=plan)
        a = degraded.task("p", 0, 1.0)
        x = degraded.transfer("ship", 0, 1, n_bytes=1e9, deps=[a])
        degraded.run()
        clean = ClusterSimulator(paper_testbed(2))
        a2 = clean.task("p", 0, 1.0)
        y = clean.transfer("ship", 0, 1, n_bytes=1e9, deps=[a2])
        clean.run()
        # half the bandwidth doubles the payload time
        payload_clean = y.end_time - y.start_time
        payload_degraded = x.end_time - x.start_time
        assert payload_degraded == pytest.approx(2 * payload_clean, rel=1e-4)

    def test_partition_delays_transfer_start(self):
        plan = FaultPlan(
            link_faults=(LinkDegradation(at=0.0, duration=5.5, partition=True),)
        )
        sim = ClusterSimulator(paper_testbed(2), faults=plan)
        a = sim.task("p", 0, 1.0)
        x = sim.transfer("ship", 0, 1, n_bytes=1e6, deps=[a])
        sim.run()
        assert x.start_time == pytest.approx(5.5)

    def test_fail_fast_abort_names_the_crash(self):
        plan = FaultPlan(node_crashes=(NodeCrash(node=0, at=4.0),))
        sim = ClusterSimulator(paper_testbed(2), faults=plan, recovery=FailFastRecovery())
        sim.task("work", node=0, duration=10.0)
        sim.run()
        assert sim.stats.aborted
        assert sim.stats.abort_time == pytest.approx(4.0)
        assert "node 0" in sim.stats.abort_reason
        assert "fail_fast" in sim.stats.abort_reason

    def test_irrelevant_crash_never_consults_policy(self):
        # node 1 is crashed but the DAG never touches it: even the
        # fail-fast policy must let the run complete untouched
        plan = FaultPlan(node_crashes=(NodeCrash(node=1, at=1.0),))
        sim = ClusterSimulator(paper_testbed(2), faults=plan, recovery=FailFastRecovery())
        t = sim.task("work", node=0, duration=10.0)
        sim.run()
        assert not sim.stats.aborted
        assert t.end_time == pytest.approx(10.0)

    def test_redispatch_migrates_behind_restore(self):
        plan = FaultPlan(node_crashes=(NodeCrash(node=1, at=1.0),))
        sim = ClusterSimulator(
            paper_testbed(2), faults=plan,
            recovery=ReDispatchRecovery(nodes=(0, 1), restore_s=2.0),
        )
        a = sim.task("w0", node=0, duration=5.0)
        b = sim.task("w1", node=1, duration=5.0)
        sim.run()
        # b loses 1s of progress, waits for node 0 (busy until 5), then a
        # 2s full-node restore precedes the 5s re-run: 5 + 2 + 5 = 12
        assert a.end_time == pytest.approx(5.0)
        assert b.end_time == pytest.approx(12.0)
        assert b.node == 0
        assert sim.stats.n_redispatched == 1
        restores = [s for s in sim.trace.tasks if s.name.startswith("restore")]
        assert len(restores) == 1

    def test_task_failures_are_bounded_and_deterministic(self):
        def run():
            plan = FaultPlan(task_failures=TaskFailures(rate=0.9, seed=7, max_attempts=3))
            sim = ClusterSimulator(paper_testbed(2), faults=plan)
            for i in range(4):
                sim.task(f"job{i}", node=0, duration=2.0, cores=4)
            sim.run()
            return sim

        one, two = run(), run()
        # rate .9 fails both retryable attempts of all 4 tasks; the final
        # attempt always succeeds (bounded retry storm)
        assert one.stats.n_task_failures == 8
        assert one.trace.makespan == two.trace.makespan
        assert one.trace.to_records() == two.trace.to_records()
        points = [f for f in one.trace.faults if f.kind == "task_failure"]
        assert len(points) == 8 and all(f.start == f.end for f in points)

    def test_fault_spans_land_on_the_trace(self):
        sim = ClusterSimulator(paper_testbed(2), faults=CHAOS_PLAN,
                               recovery=ReDispatchRecovery(nodes=(0, 1)))
        prev = None
        for i in range(6):
            prev = sim.task(f"s{i}", node=i % 2, duration=1.5,
                            deps=[prev] if prev else [])
        sim.run()
        kinds = {f.kind for f in sim.trace.faults}
        assert "crash" in kinds
        assert sim.trace.summary()["n_faults"] == len(sim.trace.faults)


# --------------------------------------------------- framework recovery
SPEC_2N = dict(algorithm="ppo", n_nodes=2, cores_per_node=2,
               total_steps=400, eval_episodes=1)
SPEC_1N = dict(algorithm="ppo", n_nodes=1, cores_per_node=2,
               total_steps=400, eval_episodes=1)
WORKER_CRASH = FaultPlan(node_crashes=(NodeCrash(node=1, at=0.2),))
NODE0_CRASH_RESTART = FaultPlan(node_crashes=(NodeCrash(node=0, at=0.2, restart_after=0.5),))
NODE0_CRASH_FATAL = FaultPlan(node_crashes=(NodeCrash(node=0, at=0.2),))


class TestFrameworkRecovery:
    def test_rllib_redispatches_and_learning_is_unaffected(self):
        clean = get_framework("rllib").train(TrainSpec(**SPEC_2N))
        faulted = get_framework("rllib", fault_plan=WORKER_CRASH).train(
            TrainSpec(**SPEC_2N)
        )
        # faults live in virtual time only: the learning outcome is identical
        assert faulted.reward == clean.reward
        assert faulted.recovery_overhead_s > 0.0
        assert faulted.computation_time_s > clean.computation_time_s
        assert faulted.completion_under_faults == 1.0
        assert faulted.fault_stats is not None
        assert faulted.fault_stats["n_redispatched"] >= 1

    def test_stable_fails_fast_with_structured_extras(self):
        fw = get_framework("stable", fault_plan=NODE0_CRASH_FATAL)
        with pytest.raises(ClusterFaultError) as excinfo:
            fw.train(TrainSpec(**SPEC_1N))
        assert excinfo.value.extras["failure_stage"] == "cluster_fault"
        assert excinfo.value.extras["recovery_policy"] == "fail_fast"
        assert excinfo.value.extras["abort_time_s"] >= 0.0

    def test_stable_survives_crash_of_unused_node(self):
        result = get_framework("stable", fault_plan=WORKER_CRASH).train(
            TrainSpec(**SPEC_1N)
        )
        assert result.recovery_overhead_s == 0.0
        assert result.completion_under_faults == 1.0

    def test_tfagents_degrades_through_restart(self):
        clean = get_framework("tfagents").train(TrainSpec(**SPEC_1N))
        faulted = get_framework("tfagents", fault_plan=NODE0_CRASH_RESTART).train(
            TrainSpec(**SPEC_1N)
        )
        assert faulted.recovery_overhead_s > 0.0
        assert faulted.completion_under_faults == 1.0
        assert faulted.reward == clean.reward

    def test_tfagents_no_restart_is_penalized_not_raised(self):
        clean = get_framework("tfagents").train(TrainSpec(**SPEC_1N))
        faulted = get_framework("tfagents", fault_plan=NODE0_CRASH_FATAL).train(
            TrainSpec(**SPEC_1N)
        )
        assert faulted.completion_under_faults < 1.0
        assert faulted.computation_time_s == pytest.approx(
            2.0 * clean.computation_time_s
        )

    def test_empty_plan_matches_fault_free_run(self):
        plain = get_framework("stable").train(TrainSpec(**SPEC_1N))
        empty = get_framework("stable", fault_plan=FaultPlan()).train(
            TrainSpec(**SPEC_1N)
        )
        assert empty.reward == plain.reward
        assert empty.computation_time_s == plain.computation_time_s
        assert empty.fault_stats is None


# ------------------------------------------------------- campaign level
class TestResilienceCampaign:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_fingerprint_identical_across_executors(self, executor):
        study = FaultSimCaseStudy(fault_plan=CHAOS_PLAN)
        report = sim_campaign(study, executor=executor, max_workers=3).run()
        fingerprint = table_fingerprint(report.table)
        baseline = table_fingerprint(
            sim_campaign(FaultSimCaseStudy(fault_plan=CHAOS_PLAN)).run().table
        )
        assert fingerprint == baseline

    def test_resilience_front_exists(self):
        report = sim_campaign(FaultSimCaseStudy(fault_plan=CHAOS_PLAN)).run()
        assert "resilience" in report.rankings
        front = report.fronts()["resilience"]
        assert len(front) >= 1
        table = report.table
        overheads = {t.objectives["recovery_overhead"] for t in table.completed()}
        assert any(v > 0 for v in overheads)  # the plan actually bit

    def test_crash_killed_trial_retries_then_journals_once(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        study = FaultSimCaseStudy(fault_plan=CRASH_NODE1_PLAN, policy="fail_fast")
        report = sim_campaign(
            study,
            retry=RetryPolicy(max_retries=1, backoff_s=0.0),
            journal=CampaignJournal(path),
        ).run()
        failed = [t for t in report.table if t.status == TrialStatus.FAILED]
        survived = [t for t in report.table if t.ok]
        assert failed and survived  # wide configs die, narrow ones live
        assert all(t.extras["failure_stage"] == "cluster_fault" for t in failed)
        # each failed trial burned the retry budget (initial + 1 retry)
        calls = {}
        for config in study.evaluated:
            calls[config.trial_id] = calls.get(config.trial_id, 0) + 1
        for t in failed:
            assert calls[t.trial_id] == 2
        # journaled exactly once, with the final outcome
        rows = [json.loads(line) for line in open(path, encoding="utf-8")]
        trial_rows = [r for r in rows if r["type"] == "trial"]
        assert len(trial_rows) == len(report.table)
        assert sorted(r["trial_id"] for r in trial_rows) == sorted(
            t.trial_id for t in report.table
        )

    def test_faulted_campaign_survives_kill_then_resume(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        interrupted = FaultSimCaseStudy(fault_plan=CHAOS_PLAN, interrupt_at=5)
        with pytest.raises(KeyboardInterrupt):
            sim_campaign(interrupted, journal=CampaignJournal(path)).run()
        recorded = CampaignJournal.resume(path).n_recorded
        assert 0 < recorded < 6
        study = FaultSimCaseStudy(fault_plan=CHAOS_PLAN)
        report = sim_campaign(study, journal=CampaignJournal.resume(path)).run()
        assert report.meta["n_replayed"] == recorded
        assert len(study.evaluated) == 6 - recorded
        full = sim_campaign(FaultSimCaseStudy(fault_plan=CHAOS_PLAN)).run()
        assert table_fingerprint(report.table) == table_fingerprint(full.table)

    def test_resume_under_different_fault_plan_is_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        sim_campaign(
            FaultSimCaseStudy(fault_plan=CHAOS_PLAN), journal=CampaignJournal(path)
        ).run()
        other = FaultSimCaseStudy(fault_plan=CRASH_NODE1_PLAN)
        with pytest.raises(JournalMismatch, match="fault_plan"):
            sim_campaign(other, journal=CampaignJournal.resume(path)).run()


# ------------------------------------------------------- perfetto lane
class TestPerfettoFaultLane:
    def test_faults_render_on_a_dedicated_track(self):
        plan = FaultPlan(
            node_crashes=(NodeCrash(node=1, at=1.0, restart_after=2.0),),
            task_failures=TaskFailures(rate=0.9, seed=3, max_attempts=2),
        )
        sim = ClusterSimulator(paper_testbed(2), faults=plan,
                               recovery=DegradeRecovery())
        prev = None
        for i in range(4):
            prev = sim.task(f"s{i}", node=i % 2, duration=1.0,
                            deps=[prev] if prev else [])
        sim.run()
        payload = chrome_trace(sim.trace.to_records(trial_id=1))
        assert validate_chrome_trace(payload) == []
        lanes = [
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        ]
        assert any(lane.endswith("faults") for lane in lanes)
        fault_events = [
            e for e in payload["traceEvents"] if e.get("cat") == "virtual.fault"
        ]
        assert fault_events
        # point faults (task failures) are rendered as instants
        assert any(e["ph"] == "i" for e in fault_events)
        # windowed faults (the crash) are rendered as slices
        assert any(e["ph"] == "X" for e in fault_events)
