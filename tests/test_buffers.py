"""Tests for rollout and replay buffers (GAE correctness in particular)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rl import ReplayBuffer, RolloutBuffer, compute_gae


class TestComputeGAE:
    def test_single_step_delta(self):
        rewards = np.array([[1.0]])
        values = np.array([[0.5]])
        terms = np.array([[0.0]])
        adv, ret = compute_gae(rewards, values, terms, np.array([2.0]), gamma=0.9, lam=0.8)
        # delta = 1 + 0.9*2 - 0.5 = 2.3
        assert adv[0, 0] == pytest.approx(2.3)
        assert ret[0, 0] == pytest.approx(2.8)

    def test_terminal_cuts_bootstrap(self):
        rewards = np.array([[1.0]])
        values = np.array([[0.5]])
        terms = np.array([[1.0]])
        adv, _ = compute_gae(rewards, values, terms, np.array([100.0]), 0.9, 0.8)
        assert adv[0, 0] == pytest.approx(0.5)  # 1 - 0.5, no bootstrap

    def test_lambda_zero_is_td(self):
        T, N = 5, 1
        rng = np.random.default_rng(0)
        rewards = rng.standard_normal((T, N))
        values = rng.standard_normal((T, N))
        terms = np.zeros((T, N))
        last = rng.standard_normal(N)
        adv, _ = compute_gae(rewards, values, terms, last, gamma=0.95, lam=0.0)
        next_vals = np.vstack([values[1:], last[None]])
        delta = rewards + 0.95 * next_vals - values
        assert np.allclose(adv, delta)

    def test_lambda_one_is_monte_carlo(self):
        T = 4
        rewards = np.ones((T, 1))
        values = np.zeros((T, 1))
        terms = np.zeros((T, 1))
        terms[-1] = 1.0  # episode ends at segment end
        adv, ret = compute_gae(rewards, values, terms, np.zeros(1), gamma=1.0, lam=1.0)
        # with V=0 and gamma=1: advantage at t = remaining reward
        assert np.allclose(ret[:, 0], [4, 3, 2, 1])

    def test_independent_envs(self):
        # env 0 terminates mid-segment; env 1 never does
        rewards = np.array([[1.0, 1.0], [1.0, 1.0], [1.0, 1.0]])
        values = np.zeros((3, 2))
        terms = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 0.0]])
        adv, _ = compute_gae(rewards, values, terms, np.zeros(2), gamma=1.0, lam=1.0)
        assert adv[0, 0] == pytest.approx(2.0)  # cut at t=1
        assert adv[0, 1] == pytest.approx(3.0)  # full segment


class TestRolloutBuffer:
    def make(self, T=4, N=2, **kw):
        return RolloutBuffer(n_steps=T, n_envs=N, obs_dim=3, act_dim=1, **kw)

    def fill(self, buf, T=4, N=2):
        for t in range(T):
            buf.add(
                obs=np.full((N, 3), t, dtype=float),
                actions=np.zeros((N, 1)),
                log_probs=np.zeros(N),
                rewards=np.ones(N),
                values=np.zeros(N),
                terminations=np.zeros(N),
                truncations=np.zeros(N),
                bootstrap_values=np.zeros(N),
            )

    def test_overfill_raises(self):
        buf = self.make()
        self.fill(buf)
        with pytest.raises(RuntimeError):
            self.fill(buf, T=1)

    def test_finish_before_full_raises(self):
        buf = self.make()
        self.fill(buf, T=2)
        with pytest.raises(RuntimeError):
            buf.finish(np.zeros(2))

    def test_minibatches_before_finish_raises(self, rng):
        buf = self.make()
        self.fill(buf)
        with pytest.raises(RuntimeError):
            list(buf.minibatches(2, rng))

    def test_minibatches_partition_all_samples(self, rng):
        buf = self.make()
        self.fill(buf)
        buf.finish(np.zeros(2))
        batches = list(buf.minibatches(2, rng, normalize_advantages=False))
        assert sum(len(b) for b in batches) == 8
        all_obs = np.concatenate([b.observations for b in batches])
        assert sorted(all_obs[:, 0]) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_advantage_normalization(self, rng):
        buf = self.make()
        for t in range(4):
            buf.add(
                obs=np.zeros((2, 3)),
                actions=np.zeros((2, 1)),
                log_probs=np.zeros(2),
                rewards=np.array([float(t), -float(t)]),
                values=np.zeros(2),
                terminations=np.zeros(2),
                truncations=np.zeros(2),
            )
        buf.finish(np.zeros(2))
        batch = next(iter(buf.minibatches(1, rng, normalize_advantages=True)))
        assert abs(batch.advantages.mean()) < 1e-9
        assert batch.advantages.std() == pytest.approx(1.0, abs=1e-6)

    def test_truncation_folds_bootstrap_into_reward(self):
        buf = self.make(T=1, N=1, gamma=0.9)
        buf.add(
            obs=np.zeros((1, 3)),
            actions=np.zeros((1, 1)),
            log_probs=np.zeros(1),
            rewards=np.array([1.0]),
            values=np.array([0.0]),
            terminations=np.array([0.0]),
            truncations=np.array([1.0]),
            bootstrap_values=np.array([2.0]),
        )
        buf.finish(np.array([50.0]))
        # reward augmented: 1 + 0.9*2 = 2.8; chain cut (last_values ignored)
        assert buf.returns[0, 0] == pytest.approx(2.8)

    def test_termination_beats_truncation(self):
        buf = self.make(T=1, N=1, gamma=0.9)
        buf.add(
            obs=np.zeros((1, 3)),
            actions=np.zeros((1, 1)),
            log_probs=np.zeros(1),
            rewards=np.array([1.0]),
            values=np.array([0.0]),
            terminations=np.array([1.0]),
            truncations=np.array([1.0]),
            bootstrap_values=np.array([2.0]),
        )
        buf.finish(np.zeros(1))
        assert buf.returns[0, 0] == pytest.approx(1.0)  # no bootstrap added

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RolloutBuffer(0, 1, 3, 1)
        with pytest.raises(ValueError):
            RolloutBuffer(4, 1, 3, 1, gamma=1.5)
        with pytest.raises(ValueError):
            RolloutBuffer(4, 1, 3, 1, lam=-0.1)

    def test_invalid_minibatch_count(self, rng):
        buf = self.make()
        self.fill(buf)
        buf.finish(np.zeros(2))
        with pytest.raises(ValueError):
            list(buf.minibatches(0, rng))
        with pytest.raises(ValueError):
            list(buf.minibatches(9, rng))

    def test_reset_allows_reuse(self, rng):
        buf = self.make()
        self.fill(buf)
        buf.finish(np.zeros(2))
        buf.reset()
        assert not buf.full
        self.fill(buf)
        buf.finish(np.zeros(2))


class TestReplayBuffer:
    def test_add_and_sample(self, rng):
        buf = ReplayBuffer(100, obs_dim=3, act_dim=1)
        for i in range(10):
            buf.add(np.full(3, i), np.array([0.5]), float(i), np.full(3, i + 1), False)
        assert len(buf) == 10
        batch = buf.sample(32, rng)
        assert batch.observations.shape == (32, 3)
        assert np.all(batch.rewards < 10)

    def test_ring_overwrite(self):
        buf = ReplayBuffer(4, obs_dim=1, act_dim=1)
        for i in range(10):
            buf.add(np.array([i]), np.zeros(1), 0.0, np.array([i]), False)
        assert len(buf) == 4
        assert set(buf.observations[:, 0]) == {6, 7, 8, 9}

    def test_sample_empty_raises(self, rng):
        buf = ReplayBuffer(4, 1, 1)
        with pytest.raises(RuntimeError):
            buf.sample(2, rng)

    def test_terminations_stored(self, rng):
        buf = ReplayBuffer(8, 1, 1)
        buf.add(np.zeros(1), np.zeros(1), 0.0, np.zeros(1), True)
        buf.add(np.zeros(1), np.zeros(1), 0.0, np.zeros(1), False)
        assert buf.terminations[0] == 1.0
        assert buf.terminations[1] == 0.0

    def test_add_batch(self, rng):
        buf = ReplayBuffer(16, 2, 1)
        buf.add_batch(
            np.zeros((5, 2)), np.zeros((5, 1)), np.arange(5.0), np.ones((5, 2)),
            np.zeros(5, dtype=bool),
        )
        assert len(buf) == 5

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(0, 1, 1)
