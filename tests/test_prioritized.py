"""Tests for the sum-tree and prioritized replay buffer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rl import PrioritizedBatch, PrioritizedReplayBuffer, SACAgent, SACConfig, SumTree


class TestSumTree:
    def test_total_tracks_sets(self):
        tree = SumTree(4)
        tree.set(0, 1.0)
        tree.set(1, 2.0)
        tree.set(2, 3.0)
        assert tree.total == pytest.approx(6.0)
        tree.set(1, 0.5)
        assert tree.total == pytest.approx(4.5)

    def test_get_roundtrip(self):
        tree = SumTree(8)
        tree.set(5, 2.5)
        assert tree.get(5) == pytest.approx(2.5)
        assert tree.get(0) == 0.0

    def test_find_respects_masses(self):
        tree = SumTree(4)
        tree.set(0, 1.0)
        tree.set(1, 2.0)
        tree.set(2, 3.0)
        # prefix sums: [0,1), [1,3), [3,6)
        assert tree.find(0.5) == 0
        assert tree.find(1.5) == 1
        assert tree.find(2.9) == 1
        assert tree.find(3.1) == 2
        assert tree.find(5.99) == 2

    def test_find_empty_raises(self):
        with pytest.raises(ValueError):
            SumTree(4).find(0.5)

    def test_non_power_of_two_capacity(self):
        tree = SumTree(5)
        for i in range(5):
            tree.set(i, float(i + 1))
        assert tree.total == pytest.approx(15.0)
        assert tree.find(14.9) == 4

    def test_bounds_checks(self):
        tree = SumTree(4)
        with pytest.raises(IndexError):
            tree.set(4, 1.0)
        with pytest.raises(ValueError):
            tree.set(0, -1.0)

    def test_sampling_distribution_matches_priorities(self, rng):
        tree = SumTree(3)
        tree.set(0, 1.0)
        tree.set(1, 3.0)
        tree.set(2, 6.0)
        counts = np.zeros(3)
        for _ in range(6000):
            counts[tree.find(rng.uniform(0, tree.total))] += 1
        freq = counts / counts.sum()
        assert np.allclose(freq, [0.1, 0.3, 0.6], atol=0.03)


class TestPrioritizedReplayBuffer:
    def make(self, **kw):
        defaults = dict(capacity=64, obs_dim=2, act_dim=1, alpha=0.6, beta=0.4)
        defaults.update(kw)
        return PrioritizedReplayBuffer(**defaults)

    def fill(self, buf, n=20, rng=None):
        rng = rng or np.random.default_rng(0)
        for i in range(n):
            buf.add(rng.standard_normal(2), rng.uniform(-1, 1, 1), float(i),
                    rng.standard_normal(2), False)

    def test_sample_shape_and_fields(self, rng):
        buf = self.make()
        self.fill(buf)
        batch = buf.sample(8, rng)
        assert isinstance(batch, PrioritizedBatch)
        assert batch.observations.shape == (8, 2)
        assert batch.weights.shape == (8,)
        assert batch.indices.shape == (8,)
        assert np.all(batch.weights <= 1.0 + 1e-12)
        assert np.all(batch.weights > 0.0)

    def test_new_items_have_max_priority(self, rng):
        buf = self.make()
        self.fill(buf, n=4)
        # all equal priorities → uniform-ish sampling, weights == 1
        batch = buf.sample(16, rng)
        assert np.allclose(batch.weights, 1.0)

    def test_update_priorities_bias_sampling(self, rng):
        buf = self.make(alpha=1.0)
        self.fill(buf, n=10)
        # crush every priority except index 3
        buf.update_priorities(np.arange(10), np.zeros(10))
        buf.update_priorities(np.array([3]), np.array([100.0]))
        batch = buf.sample(64, rng)
        assert np.mean(batch.indices == 3) > 0.9

    def test_empty_sample_raises(self, rng):
        with pytest.raises(RuntimeError):
            self.make().sample(4, rng)

    def test_invalid_exponents(self):
        with pytest.raises(ValueError):
            self.make(alpha=1.5)
        with pytest.raises(ValueError):
            self.make(beta=-0.1)

    def test_ring_overwrite(self, rng):
        buf = self.make(capacity=8)
        self.fill(buf, n=20)
        assert len(buf) == 8
        batch = buf.sample(8, rng)
        assert np.all(batch.rewards >= 12)  # only the last 8 rewards remain

    def test_alpha_zero_is_uniform(self, rng):
        buf = self.make(alpha=0.0)
        self.fill(buf, n=16)
        buf.update_priorities(np.arange(16), np.linspace(0, 10, 16))
        batch = buf.sample(2000, rng)
        freq = np.bincount(batch.indices, minlength=16) / 2000
        assert freq.max() < 0.12  # ≈ 1/16 each


class TestSACWithPrioritizedReplay:
    def test_learns_with_priorities(self):
        agent = SACAgent(
            2,
            1,
            SACConfig(
                hidden_sizes=(32, 32),
                learning_starts=64,
                batch_size=64,
                prioritized_replay=True,
            ),
            seed=0,
        )
        rng = np.random.default_rng(1)
        obs = rng.standard_normal(2)
        for _ in range(1200):
            action = agent.act(obs[None])["action"][0]
            reward = -float((action[0] - 0.5) ** 2)
            next_obs = rng.standard_normal(2)
            agent.observe(obs, action, reward, next_obs, False)
            if agent.ready_to_update():
                agent.update()
            obs = next_obs
        actions = agent.act(rng.standard_normal((100, 2)), deterministic=True)["action"]
        assert abs(actions.mean() - 0.5) < 0.3
        assert isinstance(agent.buffer, PrioritizedReplayBuffer)
