"""Tests for the post-campaign analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Configuration,
    Metric,
    MetricSet,
    ResultsTable,
    TrialResult,
    TrialStatus,
    pairwise_interaction,
    parameter_effects,
    parameter_importance,
)


def build_table():
    """time = 100/cores + tiny framework effect; reward depends on algo."""
    metrics = MetricSet(
        [Metric(name="reward", direction="max"), Metric(name="time", direction="min")]
    )
    table = ResultsTable(metrics)
    trial_id = 0
    for cores in (2, 4):
        for algo in ("ppo", "sac"):
            for fw in ("a", "b"):
                trial_id += 1
                reward = -0.5 if algo == "ppo" else -3.0
                time_ = 100.0 / cores + (1.0 if fw == "b" else 0.0)
                table.add(
                    TrialResult(
                        config=Configuration(
                            {"cores": cores, "algo": algo, "fw": fw}, trial_id=trial_id
                        ),
                        objectives={"reward": reward, "time": time_},
                    )
                )
    return table


class TestParameterEffects:
    def test_conditional_means(self):
        table = build_table()
        effects = parameter_effects(table, "cores", "time")
        assert effects.levels[2][0] == pytest.approx(50.5)
        assert effects.levels[4][0] == pytest.approx(25.5)
        assert effects.levels[2][2] == 4  # count

    def test_best_level_direction(self):
        table = build_table()
        effects = parameter_effects(table, "algo", "reward")
        assert effects.best_level(maximize=True) == "ppo"
        effects = parameter_effects(table, "cores", "time")
        assert effects.best_level(maximize=False) == 4

    def test_spread(self):
        table = build_table()
        assert parameter_effects(table, "cores", "time").spread() == pytest.approx(25.0)
        assert parameter_effects(table, "algo", "reward").spread() == pytest.approx(2.5)

    def test_render(self):
        text = parameter_effects(build_table(), "algo", "reward").render()
        assert "'algo'" in text and "mean" in text

    def test_unknown_parameter(self):
        with pytest.raises(KeyError):
            parameter_effects(build_table(), "nope", "time")

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            parameter_effects(build_table(), "cores", "nope")

    def test_empty_table(self):
        metrics = MetricSet([Metric(name="x", direction="min")])
        with pytest.raises(ValueError):
            parameter_effects(ResultsTable(metrics), "p", "x")


class TestParameterImportance:
    def test_dominant_parameter_identified(self):
        table = build_table()
        importance = parameter_importance(table, "time")
        # time is driven by cores, slightly by fw, not at all by algo
        assert importance["cores"] > 0.9
        assert importance["algo"] == pytest.approx(0.0, abs=1e-9)
        assert sum(importance.values()) == pytest.approx(1.0)

    def test_reward_driven_by_algo(self):
        importance = parameter_importance(build_table(), "reward")
        assert importance["algo"] > 0.99

    def test_subset_of_parameters(self):
        importance = parameter_importance(build_table(), "time", parameters=["cores", "fw"])
        assert set(importance) == {"cores", "fw"}

    def test_zero_variance(self):
        metrics = MetricSet([Metric(name="x", direction="min")])
        table = ResultsTable(metrics)
        for i in range(4):
            table.add(
                TrialResult(
                    config=Configuration({"p": i % 2}, trial_id=i),
                    objectives={"x": 1.0},
                )
            )
        importance = parameter_importance(table, "x")
        assert all(v == 0.0 for v in importance.values())


class TestPairwiseInteraction:
    def test_grid_means(self):
        table = build_table()
        grid = pairwise_interaction(table, "cores", "algo", "reward")
        assert grid[(2, "ppo")][0] == pytest.approx(-0.5)
        assert grid[(4, "sac")][0] == pytest.approx(-3.0)
        assert grid[(2, "ppo")][1] == 2  # two frameworks per cell

    def test_ignores_failed_trials(self):
        table = build_table()
        table.add(
            TrialResult(
                config=Configuration({"cores": 2, "algo": "ppo", "fw": "a"}, trial_id=99),
                objectives={},
                status=TrialStatus.FAILED,
            )
        )
        grid = pairwise_interaction(table, "cores", "algo", "reward")
        assert grid[(2, "ppo")][1] == 2
