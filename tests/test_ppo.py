"""Tests for the PPO agent."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rl import PPOAgent, PPOConfig


def collect_rollout(agent, buf, env_step, obs, n_steps):
    """Drive a toy scalar environment through the buffer."""
    for _ in range(n_steps):
        out = agent.act(obs)
        next_obs, rewards, terms = env_step(obs, out["action"])
        buf.add(
            obs,
            out["action"],
            out["log_prob"],
            rewards,
            out["value"],
            terms,
            np.zeros_like(terms),
            np.zeros(len(obs)),
        )
        obs = next_obs
    buf.finish(agent.value(obs))
    return obs


class TestConfig:
    def test_invalid_clip_range(self):
        with pytest.raises(ValueError):
            PPOConfig(clip_range=0.0)

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            PPOConfig(n_epochs=0)


class TestActing:
    def test_act_shapes(self):
        agent = PPOAgent(4, 2, seed=0)
        out = agent.act(np.zeros((7, 4)))
        assert out["action"].shape == (7, 2)
        assert out["log_prob"].shape == (7,)
        assert out["value"].shape == (7,)

    def test_deterministic_act_is_mode(self):
        agent = PPOAgent(4, 2, seed=0)
        a1 = agent.act(np.ones((1, 4)), deterministic=True)["action"]
        a2 = agent.act(np.ones((1, 4)), deterministic=True)["action"]
        assert np.allclose(a1, a2)

    def test_stochastic_act_varies(self):
        agent = PPOAgent(4, 2, seed=0)
        a1 = agent.act(np.ones((1, 4)))["action"]
        a2 = agent.act(np.ones((1, 4)))["action"]
        assert not np.allclose(a1, a2)

    def test_log_prob_consistent_with_distribution(self):
        agent = PPOAgent(3, 1, seed=1)
        obs = np.random.default_rng(0).standard_normal((5, 3))
        out = agent.act(obs)
        from repro.rl import DiagGaussian

        dist = DiagGaussian(agent.actor.forward(obs), agent.log_std.value)
        assert np.allclose(out["log_prob"], dist.log_prob(out["action"]))


class TestPolicyState:
    def test_snapshot_roundtrip(self):
        a = PPOAgent(4, 1, seed=0)
        b = PPOAgent(4, 1, seed=99)
        b.load_policy_state(a.policy_state())
        obs = np.random.default_rng(0).standard_normal((3, 4))
        assert np.allclose(
            a.act(obs, deterministic=True)["action"],
            b.act(obs, deterministic=True)["action"],
        )
        assert np.allclose(a.value(obs), b.value(obs))

    def test_snapshot_is_a_copy(self):
        a = PPOAgent(4, 1, seed=0)
        snap = a.policy_state()
        key = next(iter(snap))
        snap[key][...] = 1234.0
        assert not np.allclose(a.policy_state()[key], 1234.0)


class TestUpdate:
    def test_update_improves_simple_task(self):
        """Reward = -action²·(1+obs²); optimum is action → 0."""
        agent = PPOAgent(1, 1, PPOConfig(learning_rate=3e-3), seed=0)
        n_envs, n_steps = 8, 64
        rng = np.random.default_rng(0)

        def env_step(obs, actions):
            rewards = -np.sum(actions**2, axis=-1) * (1 + obs[:, 0] ** 2)
            return rng.standard_normal((n_envs, 1)), rewards, np.zeros(n_envs)

        obs = rng.standard_normal((n_envs, 1))
        initial_scale = float(np.exp(agent.log_std.value[0]))
        before = None
        for it in range(15):
            buf = agent.make_buffer(n_steps, n_envs)
            obs = collect_rollout(agent, buf, env_step, obs, n_steps)
            stats = agent.update(buf)
            if before is None:
                before = stats
        # the policy must shrink its actions toward zero
        test_obs = rng.standard_normal((100, 1))
        actions = agent.act(test_obs, deterministic=True)["action"]
        assert np.mean(np.abs(actions)) < 0.1
        # exploration noise must also shrink
        assert float(np.exp(agent.log_std.value[0])) < initial_scale

    def test_update_returns_stats(self):
        agent = PPOAgent(2, 1, seed=0)
        buf = agent.make_buffer(16, 2)
        rng = np.random.default_rng(1)

        def env_step(obs, actions):
            return rng.standard_normal((2, 2)), np.zeros(2), np.zeros(2)

        collect_rollout(agent, buf, env_step, rng.standard_normal((2, 2)), 16)
        stats = agent.update(buf)
        for key in ("policy_loss", "value_loss", "entropy", "approx_kl", "clip_fraction"):
            assert key in stats
        assert agent.n_updates > 0
        assert agent.metrics() == stats

    def test_value_learning(self):
        """Critic must fit a constant-reward value function."""
        agent = PPOAgent(2, 1, PPOConfig(learning_rate=1e-2, gamma=0.01), seed=0)
        rng = np.random.default_rng(2)

        def env_step(obs, actions):
            return rng.standard_normal((4, 2)), np.full(4, 3.0), np.zeros(4)

        obs = rng.standard_normal((4, 2))
        for _ in range(20):
            buf = agent.make_buffer(32, 4)
            obs = collect_rollout(agent, buf, env_step, obs, 32)
            stats = agent.update(buf)
        # with gamma≈0, returns ≈ rewards == 3
        values = agent.value(rng.standard_normal((50, 2)))
        assert np.allclose(values, 3.0, atol=0.5)

    def test_target_kl_early_stop(self):
        agent = PPOAgent(2, 1, PPOConfig(target_kl=1e-9, n_epochs=50), seed=0)
        rng = np.random.default_rng(3)

        def env_step(obs, actions):
            return rng.standard_normal((2, 2)), rng.standard_normal(2), np.zeros(2)

        buf = agent.make_buffer(32, 2)
        collect_rollout(agent, buf, env_step, rng.standard_normal((2, 2)), 32)
        agent.update(buf)
        # 50 epochs x 4 minibatches would be 200 updates; early stop cuts it
        assert agent.n_updates < 200

    def test_update_determinism(self):
        def run():
            agent = PPOAgent(2, 1, seed=42)
            rng = np.random.default_rng(7)

            def env_step(obs, actions):
                return rng.standard_normal((2, 2)), obs[:, 0], np.zeros(2)

            buf = agent.make_buffer(16, 2)
            collect_rollout(agent, buf, env_step, np.ones((2, 2)), 16)
            agent.update(buf)
            return agent.policy_state()

        s1, s2 = run(), run()
        for key in s1:
            assert np.allclose(s1[key], s2[key]), key
