"""Coverage for smaller behaviours not exercised elsewhere."""

from __future__ import annotations

import numpy as np
import pytest

import repro.airdrop  # noqa: F401
from repro.cluster import ClusterSimulator, grid_cluster
from repro.frameworks import TrainSpec, get_framework
from repro.rl import PPOAgent, PPOConfig, SACAgent, SACConfig


class TestGridCluster:
    def test_shape(self):
        spec = grid_cluster(4, cores_per_node=8, bandwidth_gbps=10.0)
        assert spec.n_nodes == 4
        assert spec.total_cores() == 32
        assert spec.link.bandwidth_gbps == 10.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            grid_cluster(0)

    def test_core_speed_scales_task_time(self):
        fast = grid_cluster(1, core_speed=2.0)
        sim = ClusterSimulator(fast)
        # the framework layer divides by core_speed; the raw simulator
        # takes durations as given — both behaviours are intentional
        sim.task("t", 0, duration=1.0)
        assert sim.run().makespan == pytest.approx(1.0)

    def test_unique_node_names(self):
        spec = grid_cluster(3)
        assert len({n.name for n in spec.nodes}) == 3


class TestFrameworkCoreSpeed:
    def test_core_speed_halves_virtual_time(self):
        from repro.frameworks import RLlibLike

        def run(speed):
            fw = RLlibLike(cluster=grid_cluster(1, cores_per_node=4, core_speed=speed))
            spec = TrainSpec(
                algorithm="ppo", n_nodes=1, cores_per_node=4, seed=0,
                env_kwargs={"rk_order": 3}, total_steps=600, eval_episodes=1,
            )
            return fw.train(spec)

        slow, fast = run(1.0), run(2.0)
        assert fast.computation_time_s == pytest.approx(slow.computation_time_s / 2, rel=0.1)
        assert fast.reward == slow.reward  # learning unchanged


class TestPPOOptions:
    def _rollout(self, agent, n_steps=32, n_envs=2, seed=0):
        buf = agent.make_buffer(n_steps, n_envs)
        rng = np.random.default_rng(seed)
        obs = rng.standard_normal((n_envs, 2))
        for _ in range(n_steps):
            out = agent.act(obs)
            buf.add(obs, out["action"], out["log_prob"], rng.standard_normal(n_envs),
                    out["value"], np.zeros(n_envs), np.zeros(n_envs), np.zeros(n_envs))
            obs = rng.standard_normal((n_envs, 2))
        buf.finish(agent.value(obs))
        return buf

    def test_unnormalized_advantages_path(self):
        agent = PPOAgent(2, 1, PPOConfig(normalize_advantages=False), seed=0)
        stats = agent.update(self._rollout(agent))
        assert np.isfinite(stats["policy_loss"])

    def test_entropy_bonus_slows_std_collapse(self):
        """With a large entropy coefficient the exploration noise must
        shrink more slowly than without."""

        def final_std(ent_coef):
            agent = PPOAgent(1, 1, PPOConfig(ent_coef=ent_coef, learning_rate=5e-3), seed=0)
            rng = np.random.default_rng(0)
            for _ in range(10):
                buf = agent.make_buffer(64, 4)
                obs = rng.standard_normal((4, 1))
                for _ in range(64):
                    out = agent.act(obs)
                    rewards = -np.sum(out["action"] ** 2, axis=-1)
                    buf.add(obs, out["action"], out["log_prob"], rewards,
                            out["value"], np.zeros(4), np.zeros(4), np.zeros(4))
                    obs = rng.standard_normal((4, 1))
                buf.finish(agent.value(obs))
                agent.update(buf)
            return float(np.exp(agent.log_std.value[0]))

        assert final_std(0.1) > final_std(0.0)

    def test_relu_activation_variant(self):
        agent = PPOAgent(2, 1, PPOConfig(activation="relu"), seed=0)
        stats = agent.update(self._rollout(agent))
        assert np.isfinite(stats["value_loss"])

    def test_single_minibatch_variant(self):
        agent = PPOAgent(2, 1, PPOConfig(n_minibatches=1, n_epochs=2), seed=0)
        agent.update(self._rollout(agent))
        assert agent.n_updates == 2  # one minibatch per epoch


class TestSACOptions:
    def test_update_every_batching(self):
        agent = SACAgent(
            2, 1,
            SACConfig(learning_starts=8, batch_size=8, update_every=4, updates_per_step=4,
                      hidden_sizes=(16, 16)),
            seed=0,
        )
        rng = np.random.default_rng(0)
        update_steps = []
        for step in range(1, 33):
            agent.observe(rng.standard_normal(2), rng.uniform(-1, 1, 1), 0.0,
                          rng.standard_normal(2), False)
            if agent.ready_to_update():
                agent.update()
                update_steps.append(step)
        # updates only fire on multiples of update_every, 4 at a time
        assert all(s % 4 == 0 for s in update_steps)
        assert agent.n_updates == len(update_steps) * 4

    def test_tanh_activation_variant(self):
        agent = SACAgent(2, 1, SACConfig(activation="tanh", hidden_sizes=(8, 8),
                                         learning_starts=4, batch_size=4), seed=0)
        rng = np.random.default_rng(0)
        for _ in range(12):
            agent.observe(rng.standard_normal(2), rng.uniform(-1, 1, 1), 0.0,
                          rng.standard_normal(2), False)
        agent.update()
        assert agent.n_updates == 1


class TestSpecScaling:
    def test_scaled_helper(self):
        spec = TrainSpec(total_steps=20_000)
        smaller = spec.scaled(4_000)
        assert smaller.total_steps == 4_000
        assert smaller.paper_steps == spec.paper_steps
        assert smaller.algorithm == spec.algorithm

    def test_rk_order_property(self):
        assert TrainSpec(env_kwargs={"rk_order": 8}).rk_order == 8
        assert TrainSpec().rk_order == 5  # env default
