"""Tests for the AirdropEnv gym environment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.airdrop import AirdropEnv, ParafoilParams, RewardConfig
from repro.airdrop.env import OBS_DIM
from repro.airdrop.reward import interpolate_touchdown


def run_episode(env, policy=None, seed=0, max_steps=800):
    obs, info = env.reset(seed=seed)
    rng = np.random.default_rng(seed)
    total = 0.0
    for step in range(max_steps):
        action = policy(obs) if policy else rng.uniform(-1, 1, 1)
        obs, r, term, trunc, info = env.step(action)
        total += r
        if term or trunc:
            return total, step + 1, info
    raise AssertionError("episode did not terminate")


class TestConstruction:
    def test_default_spaces(self, airdrop_env):
        assert airdrop_env.observation_space.shape == (OBS_DIM,)
        assert airdrop_env.action_space.shape == (1,)

    @pytest.mark.parametrize("order,stages", [(3, 3), (5, 6), (8, 12)])
    def test_rhs_evals_per_step(self, order, stages):
        env = AirdropEnv(rk_order=order)
        assert env.rhs_evals_per_step == stages

    def test_substeps_multiply_cost(self):
        env = AirdropEnv(rk_order=3, n_substeps=4)
        assert env.rhs_evals_per_step == 12

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            AirdropEnv(dt=0.0)
        with pytest.raises(ValueError):
            AirdropEnv(n_substeps=0)
        with pytest.raises(ValueError):
            AirdropEnv(altitude_limits=(0.0, 100.0))
        with pytest.raises(ValueError):
            AirdropEnv(rk_order=4)

    def test_state_before_reset_raises(self):
        env = AirdropEnv()
        with pytest.raises(RuntimeError):
            _ = env.state
        with pytest.raises(RuntimeError):
            env.step(np.zeros(1))


class TestReset:
    def test_altitude_within_limits(self):
        env = AirdropEnv(altitude_limits=(100.0, 200.0))
        for seed in range(20):
            _, info = env.reset(seed=seed)
            assert 100.0 <= info["drop_altitude"] <= 200.0

    def test_seed_reproducible(self, airdrop_env):
        a, _ = airdrop_env.reset(seed=3)
        b, _ = airdrop_env.reset(seed=3)
        assert np.allclose(a, b)

    def test_options_override(self, airdrop_env):
        _, info = airdrop_env.reset(seed=0, options={"altitude": 321.0, "radius": 50.0})
        assert info["drop_altitude"] == 321.0
        assert info["drop_radius"] == 50.0

    def test_spawn_within_glide_range(self):
        env = AirdropEnv()
        for seed in range(30):
            _, info = env.reset(seed=seed)
            glide_range = 2.0 * info["drop_altitude"]  # glide ratio 2
            assert info["drop_radius"] <= 0.65 * glide_range + 1e-9


class TestEpisode:
    def test_terminates_with_landing_info(self, airdrop_env):
        total, steps, info = run_episode(airdrop_env, seed=1)
        assert "landing_score" in info
        assert info["landing_score"] <= 0.0
        assert info["miss_distance"] >= 0.0
        assert "touchdown" in info
        assert info["episode_rhs_evals"] == steps * airdrop_env.rhs_evals_per_step

    def test_episode_length_scales_with_altitude(self):
        env = AirdropEnv()
        _, short, _ = run_episode(env, seed=0)
        env.reset(seed=0, options={"altitude": 30.0})
        # low drop lands in few steps
        _, steps_low, _ = run_episode(env, seed=0)
        # can't directly control both; just verify low-altitude bound
        env2 = AirdropEnv(altitude_limits=(30.0, 31.0))
        _, steps, _ = run_episode(env2, seed=5)
        assert steps <= 15

    def test_sparse_reward_by_default(self, airdrop_env):
        obs, _ = airdrop_env.reset(seed=2)
        obs, r, term, trunc, _ = airdrop_env.step(np.zeros(1))
        if not term:
            assert r == 0.0  # no shaping mid-flight

    def test_terminal_reward_equals_landing_score(self, airdrop_env):
        total, steps, info = run_episode(airdrop_env, seed=4)
        assert total == pytest.approx(info["landing_score"])

    def test_shaping_telescopes(self):
        env = AirdropEnv(reward_config=RewardConfig(shaping=True))
        total, steps, info = run_episode(env, seed=3)
        # with gamma=1 potential shaping, total = score + phi(end) - phi(start)
        # phi(end) = score (same function), so total = 2*score - phi(start)
        assert total < 0

    def test_determinism_full_episode(self):
        def fly(seed):
            env = AirdropEnv(rk_order=5)
            obs, _ = env.reset(seed=seed)
            rng = np.random.default_rng(seed)
            trace = []
            for _ in range(500):
                obs, r, term, trunc, info = env.step(rng.uniform(-1, 1, 1))
                trace.append((obs.copy(), r))
                if term:
                    break
            return trace

        t1, t2 = fly(9), fly(9)
        assert len(t1) == len(t2)
        for (o1, r1), (o2, r2) in zip(t1, t2):
            assert np.allclose(o1, o2)
            assert r1 == r2

    def test_action_clipped(self, airdrop_env):
        airdrop_env.reset(seed=0)
        obs1, *_ = airdrop_env.step(np.array([100.0]))
        airdrop_env.reset(seed=0)
        obs2, *_ = airdrop_env.step(np.array([1.0]))
        assert np.allclose(obs1, obs2)

    def test_rk_order_changes_trajectory(self):
        def final_obs(order):
            env = AirdropEnv(rk_order=order)
            obs, _ = env.reset(seed=11)
            rng = np.random.default_rng(11)
            for _ in range(40):
                obs, _, term, _, _ = env.step(rng.uniform(-1, 1, 1))
                if term:
                    break
            return obs

        assert not np.allclose(final_obs(3), final_obs(8))

    def test_observation_finite_and_scaled(self, airdrop_env):
        obs, _ = airdrop_env.reset(seed=7)
        rng = np.random.default_rng(7)
        for _ in range(100):
            obs, _, term, _, _ = airdrop_env.step(rng.uniform(-1, 1, 1))
            assert np.all(np.isfinite(obs))
            # orientation features are unit-bounded
            assert -1.0001 <= obs[3] <= 1.0001
            assert -1.0001 <= obs[4] <= 1.0001
            assert obs[12] <= 3.0
            if term:
                break


class TestSteering:
    def test_simple_controller_beats_random(self):
        """A proportional heading controller should land much closer than
        random actions — the env must be controllable."""

        def controller(obs):
            # obs[10], obs[11] = sin/cos of bearing error
            return np.array([np.clip(2.0 * obs[10], -1, 1)])

        env = AirdropEnv(rk_order=8)
        ctrl_scores, rand_scores = [], []
        for seed in range(8):
            _, _, info = run_episode(env, policy=controller, seed=seed)
            ctrl_scores.append(info["landing_score"])
            _, _, info = run_episode(env, seed=seed)
            rand_scores.append(info["landing_score"])
        assert np.mean(ctrl_scores) > np.mean(rand_scores) + 0.5

    def test_rk3_controller_worse_than_rk8(self):
        """The paper's accuracy effect: the same controller lands worse
        under coarse integration."""

        def controller(obs):
            return np.array([np.clip(2.0 * obs[10], -1, 1)])

        scores = {}
        for order in (3, 8):
            env = AirdropEnv(rk_order=order)
            vals = []
            for seed in range(10):
                _, _, info = run_episode(env, policy=controller, seed=seed)
                vals.append(info["landing_score"])
            scores[order] = np.mean(vals)
        assert scores[8] > scores[3]


class TestTouchdownInterpolation:
    def test_linear_interpolation(self):
        before = np.zeros(9)
        before[0], before[1], before[2] = 0.0, 0.0, 10.0
        after = np.zeros(9)
        after[0], after[1], after[2] = 10.0, 20.0, -10.0
        x, y = interpolate_touchdown(before, after)
        assert x == pytest.approx(5.0)
        assert y == pytest.approx(10.0)

    def test_after_above_ground_rejected(self):
        before = np.zeros(9)
        before[2] = 10.0
        after = np.zeros(9)
        after[2] = 5.0
        with pytest.raises(ValueError):
            interpolate_touchdown(before, after)

    def test_degenerate_already_grounded(self):
        before = np.zeros(9)
        before[2] = -1.0
        after = np.zeros(9)
        after[0], after[2] = 3.0, -2.0
        x, y = interpolate_touchdown(before, after)
        assert x == 3.0
