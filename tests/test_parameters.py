"""Tests for parameter spaces."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Boolean, Categorical, Float, Integer, ParameterSpace


class TestCategorical:
    def test_sample_from_choices(self, rng):
        p = Categorical("framework", ["a", "b", "c"])
        assert all(p.sample(rng) in ("a", "b", "c") for _ in range(20))

    def test_grid_preserves_order(self):
        p = Categorical("x", [3, 5, 8])
        assert p.grid() == [3, 5, 8]

    def test_contains(self):
        p = Categorical("x", [3, 5, 8])
        assert p.contains(5)
        assert not p.contains(4)

    def test_empty_choices_rejected(self):
        with pytest.raises(ValueError):
            Categorical("x", [])

    def test_duplicate_choices_rejected(self):
        with pytest.raises(ValueError):
            Categorical("x", [1, 1])

    def test_kind_validation(self):
        with pytest.raises(ValueError):
            Categorical("x", [1], kind="hardware")

    def test_cardinality(self):
        assert Categorical("x", [1, 2, 3]).cardinality == 3


class TestInteger:
    def test_sample_in_range(self, rng):
        p = Integer("n", 2, 6)
        samples = {p.sample(rng) for _ in range(300)}
        assert samples == {2, 3, 4, 5, 6}

    def test_log_sampling_biased_low(self, rng):
        p = Integer("n", 1, 1000, log=True)
        samples = [p.sample(rng) for _ in range(2000)]
        assert np.median(samples) < 100

    def test_grid_small_range_exhaustive(self):
        assert Integer("n", 1, 4).grid() == [1, 2, 3, 4]

    def test_grid_large_range_subsampled(self):
        g = Integer("n", 0, 1000).grid()
        assert len(g) <= 16
        assert g[0] == 0 and g[-1] == 1000

    def test_contains_rejects_floats(self):
        p = Integer("n", 1, 5)
        assert p.contains(3)
        assert not p.contains(3.5)
        assert not p.contains(6)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            Integer("n", 5, 1)

    def test_log_needs_positive_low(self):
        with pytest.raises(ValueError):
            Integer("n", 0, 10, log=True)


class TestFloat:
    def test_sample_in_range(self, rng):
        p = Float("lr", 0.1, 0.9)
        for _ in range(50):
            assert 0.1 <= p.sample(rng) <= 0.9

    def test_log_sampling(self, rng):
        p = Float("lr", 1e-5, 1e-1, log=True)
        samples = np.array([p.sample(rng) for _ in range(2000)])
        # log-uniform: median near geometric mean 1e-3
        assert 3e-4 < np.median(samples) < 3e-3

    def test_infinite_cardinality(self):
        assert np.isinf(Float("x", 0, 1).cardinality)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            Float("x", 1.0, 1.0)

    def test_grid_endpoints(self):
        g = Float("x", 0.0, 1.0).grid()
        assert g[0] == pytest.approx(0.0)
        assert g[-1] == pytest.approx(1.0)


class TestBoolean:
    def test_choices(self):
        p = Boolean("wind", kind="environment")
        assert p.grid() == [False, True]
        assert p.kind == "environment"


class TestParameterSpace:
    def make_space(self):
        return ParameterSpace(
            parameters=[
                Categorical("rk", [3, 5, 8], kind="environment"),
                Categorical("fw", ["rllib", "stable"], kind="algorithm"),
                Categorical("nodes", [1, 2], kind="system"),
            ],
            constraints=[lambda v: v["nodes"] == 1 or v["fw"] == "rllib"],
        )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ParameterSpace([Categorical("x", [1]), Categorical("x", [2])])

    def test_lookup(self):
        space = self.make_space()
        assert space["rk"].choices == (3, 5, 8)
        assert "fw" in space
        with pytest.raises(KeyError):
            space["nope"]

    def test_by_kind(self):
        space = self.make_space()
        assert [p.name for p in space.by_kind("environment")] == ["rk"]
        assert [p.name for p in space.by_kind("system")] == ["nodes"]
        with pytest.raises(ValueError):
            space.by_kind("hardware")

    def test_sample_respects_constraints(self, rng):
        space = self.make_space()
        for _ in range(100):
            values = space.sample(rng)
            assert space.is_valid(values)
            if values["nodes"] == 2:
                assert values["fw"] == "rllib"

    def test_unsatisfiable_constraints_raise(self, rng):
        space = ParameterSpace(
            [Categorical("x", [1, 2])], constraints=[lambda v: False]
        )
        with pytest.raises(RuntimeError):
            space.sample(rng, max_tries=50)

    def test_grid_filters_constraints(self):
        space = self.make_space()
        configs = list(space.grid())
        # 3*2*2 = 12 raw, minus rows with nodes=2 & fw=stable (3) → 9
        assert len(configs) == 9
        assert all(space.is_valid(c) for c in configs)
        assert space.grid_size() == 9

    def test_cardinality_upper_bound(self):
        assert self.make_space().cardinality == 12

    def test_validate_messages(self):
        space = self.make_space()
        with pytest.raises(ValueError, match="keys mismatch"):
            space.validate({"rk": 3})
        with pytest.raises(ValueError, match="not valid"):
            space.validate({"rk": 4, "fw": "rllib", "nodes": 1})
        with pytest.raises(ValueError, match="constraint"):
            space.validate({"rk": 3, "fw": "stable", "nodes": 2})

    def test_is_valid_rejects_extra_keys(self):
        space = self.make_space()
        assert not space.is_valid({"rk": 3, "fw": "rllib", "nodes": 1, "extra": 1})

    def test_grid_size_undefined_for_continuous(self):
        space = ParameterSpace([Float("x", 0, 1)])
        with pytest.raises(ValueError):
            space.grid_size()

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_sampling_always_valid_property(self, seed):
        space = self.make_space()
        values = space.sample(np.random.default_rng(seed))
        assert space.is_valid(values)
