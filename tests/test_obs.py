"""Tests for the telemetry subsystem: events, spans, meters, campaign wiring."""

from __future__ import annotations

import json

import pytest

from repro.core import (
    Campaign,
    Categorical,
    GridSearch,
    Metric,
    MetricSet,
    ParameterSpace,
    TrialStatus,
    dump_report,
    load_table,
)
from repro.obs import (
    EVT_CAMPAIGN_FINISHED,
    EVT_CAMPAIGN_STARTED,
    EVT_CHECKPOINT,
    EVT_EXPLORER_ASK,
    EVT_EXPLORER_TELL,
    EVT_TRIAL_FAILED,
    EVT_TRIAL_FINISHED,
    EVT_TRIAL_PRUNED,
    EVT_TRIAL_STARTED,
    NULL_TELEMETRY,
    JsonlSink,
    MeterRegistry,
    MultiSink,
    RingBufferSink,
    SpanTracer,
    Telemetry,
    load_records,
)


def space():
    return ParameterSpace(
        [Categorical("quality", [1, 2, 3, 4]), Categorical("cost", [10, 20])]
    )


def metrics():
    return MetricSet(
        [Metric(name="reward", direction="max"), Metric(name="time", direction="min")]
    )


class SyntheticCaseStudy:
    """Toy study; optionally fails on chosen quality values."""

    def __init__(self, fail_on=None, curve_points=3):
        self.fail_on = fail_on or set()
        self.curve_points = curve_points
        self.seeds_seen = []

    def evaluate(self, config, seed, progress=None):
        self.seeds_seen.append(seed)
        if config["quality"] in self.fail_on:
            raise RuntimeError("boom")
        if progress is not None:
            for step in range(1, self.curve_points + 1):
                if progress(step, config["quality"] * step / self.curve_points):
                    break
        return {"reward": float(config["quality"]), "time": float(config["cost"])}


class TelemetryAwareCaseStudy(SyntheticCaseStudy):
    """A study that opts into the telemetry keyword and opens phase spans."""

    def evaluate(self, config, seed, progress=None, telemetry=None):
        self.telemetry_seen = telemetry
        telem = Telemetry.or_null(telemetry)
        with telem.span("rollout", iteration=0):
            telem.trial_meters.counter("env_steps").inc(10)
        with telem.span("update", iteration=0):
            telem.trial_meters.histogram("update_s").observe(0.5)
        return super().evaluate(config, seed, progress=progress)


# --------------------------------------------------------------------- sinks
class TestSinks:
    def test_ring_buffer_caps_capacity(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.emit({"type": "event", "name": f"e{i}"})
        assert [r["name"] for r in sink.records] == ["e2", "e3", "e4"]

    def test_ring_buffer_filters(self):
        sink = RingBufferSink()
        sink.emit({"type": "event", "name": "a"})
        sink.emit({"type": "span", "name": "s"})
        assert len(sink.events()) == 1
        assert len(sink.events("a")) == 1
        assert sink.events("nope") == []
        assert len(sink.spans()) == 1

    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with JsonlSink(path) as sink:
            sink.emit({"type": "event", "name": "hello", "fields": {"x": 1}})
            sink.emit({"type": "span", "name": "s", "t_start": 0.0, "t_end": 1.0})
        records = load_records(path)
        assert len(records) == 2
        assert records[0]["name"] == "hello"
        assert records[0]["fields"] == {"x": 1}

    def test_jsonl_coerces_numpy(self, tmp_path):
        import numpy as np

        path = str(tmp_path / "log.jsonl")
        with JsonlSink(path) as sink:
            sink.emit({"type": "event", "name": "np", "fields": {"v": np.float64(2.5)}})
        assert load_records(path)[0]["fields"]["v"] == 2.5

    def test_multi_sink_fans_out(self):
        a, b = RingBufferSink(), RingBufferSink()
        multi = MultiSink([a, b])
        multi.emit({"type": "event", "name": "x"})
        assert len(a.records) == 1 and len(b.records) == 1


# --------------------------------------------------------------------- spans
class TestSpanTracer:
    def test_nesting_parent_ids(self):
        sink = RingBufferSink()
        tracer = SpanTracer(emit=sink.emit)
        with tracer.span("outer") as outer:
            assert tracer.current_id == outer.span_id
            with tracer.span("inner") as inner:
                assert tracer.depth == 2
        records = sink.spans() if hasattr(sink, "spans") else sink.records
        by_name = {r["name"]: r for r in sink.records}
        assert by_name["inner"]["parent"] == outer.span_id
        assert by_name["outer"]["parent"] is None
        # inner closes (and is emitted) first
        assert [r["name"] for r in sink.records] == ["inner", "outer"]
        assert inner.duration >= 0.0

    def test_record_explicit_interval(self):
        sink = RingBufferSink()
        tracer = SpanTracer(emit=sink.emit)
        with tracer.span("outer"):
            tracer.record("measured", 1.0, 3.0, extra="x")
        rec = sink.records[0]
        assert rec["name"] == "measured"
        assert rec["t_end"] - rec["t_start"] == 2.0
        assert rec["parent"] is not None  # defaults to the open span
        assert rec["fields"]["extra"] == "x"

    def test_span_set_fields(self):
        tracer = SpanTracer(keep=True)
        with tracer.span("s") as span:
            span.set(steps=7)
        assert tracer.finished[0].fields["steps"] == 7


# -------------------------------------------------------------------- meters
class TestMeters:
    def test_counter_gauge_histogram(self):
        reg = MeterRegistry()
        reg.counter("n").inc()
        reg.counter("n").inc(2)
        reg.gauge("g").set(4.5)
        for v in [1.0, 2.0, 3.0, 4.0]:
            reg.histogram("h").observe(v)
        snap = reg.snapshot()
        assert snap["counters"]["n"] == 3
        assert snap["gauges"]["g"] == 4.5
        hist = snap["histograms"]["h"]
        assert hist["count"] == 4
        assert hist["mean"] == 2.5
        assert hist["max"] == 4.0
        assert hist["p50"] == 2.5

    def test_empty_histogram_snapshot(self):
        assert MeterRegistry().histogram("h").snapshot() == {"count": 0}

    def test_merge_is_exact(self):
        a, b = MeterRegistry(), MeterRegistry()
        a.counter("n").inc(1)
        b.counter("n").inc(2)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(3.0)
        b.gauge("g").set(9.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["n"] == 3
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["mean"] == 2.0
        assert snap["gauges"]["g"] == 9.0

    def test_snapshot_is_json_safe(self):
        reg = MeterRegistry()
        reg.counter("n").inc()
        reg.histogram("h").observe(1.5)
        json.dumps(reg.snapshot())


# ----------------------------------------------------------------- telemetry
class TestTelemetry:
    def test_context_injected_into_events_and_spans(self):
        sink = RingBufferSink()
        telem = Telemetry(sink)
        telem.set_context(trial_id=7)
        telem.event("ping", x=1)
        with telem.span("work"):
            pass
        event, span = sink.records
        assert event["fields"] == {"trial_id": 7, "x": 1}
        assert span["ctx"] == {"trial_id": 7}
        telem.clear_context("trial_id")
        telem.event("pong")
        assert sink.records[-1]["fields"] == {}

    def test_meter_stack_merges_into_aggregate(self):
        telem = Telemetry(RingBufferSink())
        trial = telem.push_meters()
        assert telem.trial_meters is trial
        trial.counter("env_steps").inc(5)
        telem.pop_meters()
        assert telem.meters.snapshot()["counters"]["env_steps"] == 5
        assert telem.trial_meters is telem.meters

    def test_emit_record_attaches_context(self):
        sink = RingBufferSink()
        telem = Telemetry(sink)
        telem.set_context(trial_id=3)
        telem.emit_record({"type": "vspan", "kind": "task", "name": "t"})
        assert sink.records[0]["ctx"] == {"trial_id": 3}

    def test_null_telemetry_is_inert(self):
        telem = Telemetry.disabled()
        assert telem is NULL_TELEMETRY
        assert not telem.enabled
        telem.event("x", a=1)
        with telem.span("s") as span:
            span.set(a=1)
        telem.trial_meters.counter("n").inc()
        telem.push_meters()
        telem.pop_meters()
        telem.emit_records([{"type": "vspan"}])
        telem.close()
        assert Telemetry.or_null(None) is NULL_TELEMETRY
        live = Telemetry(RingBufferSink())
        assert Telemetry.or_null(live) is live


# ----------------------------------------------------------- campaign wiring
class TestCampaignTelemetry:
    def run_campaign(self, case_study=None, telemetry=None, **kwargs):
        campaign = Campaign(
            case_study or SyntheticCaseStudy(),
            space(),
            GridSearch(space()),
            metrics(),
            telemetry=telemetry,
            **kwargs,
        )
        return campaign.run(), campaign

    def test_event_stream_covers_trial_lifecycle(self):
        sink = RingBufferSink()
        report, _ = self.run_campaign(telemetry=Telemetry(sink))
        names = [r["name"] for r in sink.events()]
        assert names[0] == EVT_CAMPAIGN_STARTED
        assert names[-1] == EVT_CAMPAIGN_FINISHED
        assert names.count(EVT_TRIAL_STARTED) == 8
        assert names.count(EVT_TRIAL_FINISHED) == 8
        assert names.count(EVT_EXPLORER_ASK) == 8
        assert names.count(EVT_EXPLORER_TELL) == 8
        assert names.count(EVT_CHECKPOINT) == 8 * 3
        # one real-time trial span per trial, tagged with its id
        trial_spans = [s for s in sink.spans() if s["name"] == "trial"]
        assert len(trial_spans) == 8
        assert {s["fields"]["trial_id"] for s in trial_spans} == set(range(1, 9))

    def test_failed_trial_emits_event_with_exception_repr(self):
        sink = RingBufferSink()
        report, _ = self.run_campaign(
            SyntheticCaseStudy(fail_on={2}), telemetry=Telemetry(sink)
        )
        failed_events = sink.events(EVT_TRIAL_FAILED)
        assert len(failed_events) == 2
        assert "RuntimeError('boom')" in failed_events[0]["fields"]["error"]
        assert report.meta["n_failed"] == 2

    def test_pruned_trial_emits_pruned_event(self):
        class PruneAll:
            def report(self, trial_id, step, value):
                return True

            def finish(self, trial_id):
                pass

        sink = RingBufferSink()
        report, _ = self.run_campaign(telemetry=Telemetry(sink), pruner=PruneAll())
        assert len(sink.events(EVT_TRIAL_PRUNED)) == 8
        assert report.meta["n_pruned"] == 8
        assert report.meta["n_completed"] == 0

    def test_per_trial_meters_land_in_extras_and_meta(self):
        telem = Telemetry(RingBufferSink())
        report, _ = self.run_campaign(TelemetryAwareCaseStudy(), telemetry=telem)
        for trial in report.table:
            snap = trial.extras["telemetry"]
            assert snap["counters"]["env_steps"] == 10
            assert snap["histograms"]["update_s"]["count"] == 1
        agg = report.meta["telemetry"]
        assert agg["counters"]["env_steps"] == 80
        assert agg["histograms"]["update_s"]["count"] == 8

    def test_telemetry_kwarg_reaches_opted_in_case_study(self):
        telem = Telemetry(RingBufferSink())
        study = TelemetryAwareCaseStudy()
        self.run_campaign(study, telemetry=telem)
        assert study.telemetry_seen is telem

    def test_legacy_case_study_never_sees_telemetry(self):
        # SyntheticCaseStudy has no telemetry kwarg: must not be passed one
        report, _ = self.run_campaign(telemetry=Telemetry(RingBufferSink()))
        assert report.meta["n_completed"] == 8

    def test_phase_spans_nest_under_trial_span(self):
        sink = RingBufferSink()
        self.run_campaign(TelemetryAwareCaseStudy(), telemetry=Telemetry(sink))
        spans = sink.spans()
        trial_ids = {s["id"] for s in spans if s["name"] == "trial"}
        for name in ("rollout", "update"):
            children = [s for s in spans if s["name"] == name]
            assert len(children) == 8
            assert all(s["parent"] in trial_ids for s in children)

    def test_disabled_by_default(self):
        report, campaign = self.run_campaign()
        assert not campaign.telemetry.enabled
        assert "telemetry" not in report.meta
        assert all("telemetry" not in t.extras for t in report.table)


class TestCampaignSatellites:
    def test_duration_recorded_per_trial(self):
        campaign = Campaign(SyntheticCaseStudy(), space(), GridSearch(space()), metrics())
        report = campaign.run()
        assert all(t.duration_s > 0.0 for t in report.table)

    def test_meta_counts_failures_and_prunes(self):
        campaign = Campaign(
            SyntheticCaseStudy(fail_on={3}), space(), GridSearch(space()), metrics()
        )
        report = campaign.run()
        assert report.meta["n_trials"] == 8
        assert report.meta["n_completed"] == 6
        assert report.meta["n_failed"] == 2
        assert report.meta["n_pruned"] == 0

    def test_fixed_seed_strategy_is_default(self):
        study = SyntheticCaseStudy()
        Campaign(study, space(), GridSearch(space()), metrics(), base_seed=42).run()
        assert study.seeds_seen == [42] * 8

    def test_increment_seed_strategy(self):
        study = SyntheticCaseStudy()
        campaign = Campaign(
            study, space(), GridSearch(space()), metrics(),
            base_seed=100, seed_strategy="increment",
        )
        report = campaign.run()
        assert sorted(study.seeds_seen) == [100 + i for i in range(1, 9)]
        assert all(t.seed == 100 + t.trial_id for t in report.table)
        assert report.meta["seed_strategy"] == "increment"

    def test_resolved_seed_recorded_in_events(self):
        sink = RingBufferSink()
        Campaign(
            SyntheticCaseStudy(), space(), GridSearch(space()), metrics(),
            base_seed=7, seed_strategy="increment", telemetry=Telemetry(sink),
        ).run()
        started = sink.events(EVT_TRIAL_STARTED)
        assert all(e["fields"]["seed"] == 7 + e["fields"]["trial_id"] for e in started)

    def test_unknown_seed_strategy_rejected(self):
        with pytest.raises(ValueError):
            Campaign(
                SyntheticCaseStudy(), space(), GridSearch(space()), metrics(),
                seed_strategy="nope",
            )


class TestFailurePaths:
    """Satellite: FAILED trials stay visible but never influence results."""

    def test_failed_trials_excluded_from_rankings(self):
        campaign = Campaign(
            SyntheticCaseStudy(fail_on={4}), space(), GridSearch(space()), metrics()
        )
        report = campaign.run()
        failed_ids = {
            t.trial_id for t in report.table if t.status == TrialStatus.FAILED
        }
        assert failed_ids  # quality=4 rows fail
        for ranking in report.rankings.values():
            ranked_ids = {t.trial_id for t in ranking.ordered}
            assert not (failed_ids & ranked_ids)
            assert not (failed_ids & set(ranking.front_ids()))

    def test_error_extras_survive_dump_load_round_trip(self, tmp_path):
        campaign = Campaign(
            SyntheticCaseStudy(fail_on={1}), space(), GridSearch(space()), metrics()
        )
        report = campaign.run()
        path = str(tmp_path / "report.json")
        dump_report(report, path)
        loaded = load_table(path)
        failed = [t for t in loaded if t.status == TrialStatus.FAILED]
        assert len(failed) == 2
        for trial in failed:
            assert "RuntimeError('boom')" in trial.extras["error"]
            assert "Traceback" in trial.extras["traceback"]
            assert trial.duration_s > 0.0

    def test_failing_case_study_emits_trial_failed_event(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        campaign = Campaign(
            SyntheticCaseStudy(fail_on={1, 2, 3, 4}),
            space(),
            GridSearch(space()),
            metrics(),
            telemetry=Telemetry(JsonlSink(path)),
        )
        report = campaign.run()
        campaign.telemetry.close()
        assert report.meta["n_failed"] == 8
        assert report.rankings == {}  # nothing completed, nothing ranked
        records = load_records(path)
        failed = [
            r for r in records
            if r["type"] == "event" and r["name"] == EVT_TRIAL_FAILED
        ]
        assert len(failed) == 8
        assert all("RuntimeError('boom')" in r["fields"]["error"] for r in failed)
