"""Tests for the Env/Wrapper API and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.envs import (
    Box,
    ClipAction,
    Env,
    NormalizeObservation,
    OrderEnforcing,
    RecordEpisodeStatistics,
    RescaleAction,
    RunningMeanStd,
    TimeLimit,
    TransformReward,
    Wrapper,
    make,
    register,
    registry,
    spec,
)


class CountingEnv(Env):
    """Terminates after `horizon` steps with reward 1 per step."""

    def __init__(self, horizon: int = 5) -> None:
        self.observation_space = Box(-np.inf, np.inf, shape=(1,))
        self.action_space = Box(-1, 1, shape=(1,))
        self.horizon = horizon
        self.count = 0

    def reset(self, *, seed=None, options=None):
        super().reset(seed=seed)
        self.count = 0
        return np.array([0.0]), {}

    def step(self, action):
        self.count += 1
        terminated = self.count >= self.horizon
        return np.array([float(self.count)]), 1.0, terminated, False, {}


class TestEnvBasics:
    def test_reset_seeds_np_random(self):
        env = CountingEnv()
        env.reset(seed=42)
        a = env.np_random.random()
        env.reset(seed=42)
        b = env.np_random.random()
        assert a == b

    def test_context_manager_closes(self):
        env = CountingEnv()
        with env as e:
            assert e is env

    def test_unwrapped_returns_innermost(self):
        env = CountingEnv()
        wrapped = TimeLimit(OrderEnforcing(env), 10)
        assert wrapped.unwrapped is env

    def test_wrapper_rejects_non_env(self):
        with pytest.raises(TypeError):
            Wrapper(42)

    def test_wrapper_delegates_attributes(self):
        env = CountingEnv(horizon=7)
        wrapped = OrderEnforcing(env)
        assert wrapped.horizon == 7


class TestTimeLimit:
    def test_truncates_at_horizon(self):
        env = TimeLimit(CountingEnv(horizon=100), max_episode_steps=3)
        env.reset()
        for _ in range(2):
            _, _, term, trunc, _ = env.step(np.zeros(1))
            assert not term and not trunc
        _, _, term, trunc, info = env.step(np.zeros(1))
        assert trunc and not term
        assert info.get("TimeLimit.truncated") is True

    def test_termination_beats_truncation(self):
        env = TimeLimit(CountingEnv(horizon=3), max_episode_steps=3)
        env.reset()
        env.step(np.zeros(1))
        env.step(np.zeros(1))
        _, _, term, trunc, _ = env.step(np.zeros(1))
        assert term and not trunc

    def test_step_before_reset_raises(self):
        env = TimeLimit(CountingEnv(), 5)
        with pytest.raises(RuntimeError):
            env.step(np.zeros(1))

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            TimeLimit(CountingEnv(), 0)


class TestOrderEnforcing:
    def test_step_before_reset_raises(self):
        env = OrderEnforcing(CountingEnv())
        with pytest.raises(RuntimeError):
            env.step(np.zeros(1))
        env.reset()
        env.step(np.zeros(1))


class TestRecordEpisodeStatistics:
    def test_accumulates_episode(self):
        env = RecordEpisodeStatistics(CountingEnv(horizon=4))
        env.reset()
        info = {}
        for _ in range(4):
            _, _, term, trunc, info = env.step(np.zeros(1))
        assert info["episode"] == {"r": 4.0, "l": 4}
        assert env.episode_returns == [4.0]


class TestActionWrappers:
    def test_clip_action(self):
        env = ClipAction(CountingEnv())
        env.reset()
        env.step(np.array([10.0]))  # must not raise; clipped internally

    def test_clip_requires_box(self):
        class DiscreteActEnv(CountingEnv):
            def __init__(self):
                super().__init__()
                from repro.envs import Discrete

                self.action_space = Discrete(2)

        with pytest.raises(TypeError):
            ClipAction(DiscreteActEnv())

    def test_rescale_action_maps_range(self):
        class EchoEnv(CountingEnv):
            def step(self, action):
                self.last_action = np.asarray(action).copy()
                return super().step(action)

        inner = EchoEnv()
        env = RescaleAction(inner, low=0.0, high=1.0)
        env.reset()
        env.step(np.array([1.0]))
        assert np.allclose(inner.last_action, [1.0])
        env.step(np.array([0.0]))
        assert np.allclose(inner.last_action, [-1.0])
        env.step(np.array([0.5]))
        assert np.allclose(inner.last_action, [0.0])


class TestRunningMeanStd:
    def test_matches_numpy_statistics(self, rng):
        data = rng.standard_normal((500, 3)) * 2.5 + 1.0
        rms = RunningMeanStd(shape=(3,))
        for chunk in np.array_split(data, 10):
            rms.update(chunk)
        assert np.allclose(rms.mean, data.mean(axis=0), atol=1e-2)
        assert np.allclose(rms.var, data.var(axis=0), atol=5e-2)

    def test_single_sample_update(self):
        rms = RunningMeanStd(shape=(2,))
        rms.update(np.array([1.0, 2.0]))
        assert rms.mean.shape == (2,)


class TestNormalizeObservation:
    def test_outputs_standardized(self, rng):
        class NoisyEnv(CountingEnv):
            def step(self, action):
                obs, r, term, trunc, info = super().step(action)
                return self.np_random.normal(5.0, 3.0, size=1), r, term, trunc, info

        env = NormalizeObservation(NoisyEnv(horizon=10_000))
        env.reset(seed=0)
        outs = []
        for _ in range(800):
            obs, _, term, _, _ = env.step(np.zeros(1))
            outs.append(obs)
        arr = np.array(outs[-300:])
        assert abs(arr.mean()) < 0.3
        assert abs(arr.std() - 1.0) < 0.3

    def test_training_flag_freezes_statistics(self):
        env = NormalizeObservation(CountingEnv(horizon=100))
        env.reset()
        for _ in range(10):
            env.step(np.zeros(1))
        env.training = False
        frozen_mean = env.obs_rms.mean.copy()
        for _ in range(10):
            env.step(np.zeros(1))
        assert np.allclose(env.obs_rms.mean, frozen_mean)


class TestTransformReward:
    def test_applies_function(self):
        env = TransformReward(CountingEnv(), lambda r: 2 * r)
        env.reset()
        _, r, _, _, _ = env.step(np.zeros(1))
        assert r == 2.0

    def test_nan_rejected(self):
        env = TransformReward(CountingEnv(), lambda r: float("nan"))
        env.reset()
        with pytest.raises(ValueError):
            env.step(np.zeros(1))


class TestRegistry:
    def test_register_and_make(self):
        register("Counting-v0", CountingEnv, max_episode_steps=10, force=True)
        env = make("Counting-v0", horizon=50)
        env.reset()
        steps = 0
        while True:
            _, _, term, trunc, _ = env.step(np.zeros(1))
            steps += 1
            if term or trunc:
                break
        assert steps == 10  # TimeLimit applied

    def test_make_unknown_id_raises(self):
        with pytest.raises(KeyError):
            make("Nope-v99")

    def test_duplicate_registration_raises(self):
        register("Dup-v0", CountingEnv, force=True)
        with pytest.raises(ValueError):
            register("Dup-v0", CountingEnv)

    def test_spec_lookup(self):
        register("Lookup-v3", CountingEnv, force=True)
        s = spec("Lookup-v3")
        assert s.name == "Lookup"
        assert s.version == 3

    def test_airdrop_registered(self):
        assert "Airdrop-v0" in registry
        env = make("Airdrop-v0", rk_order=3)
        obs, _ = env.reset(seed=0)
        assert obs.shape == (13,)

    def test_make_kwargs_override(self):
        env = make("Airdrop-v0", rk_order=8)
        assert env.unwrapped.rk_order == 8

    def test_string_entry_point(self):
        register("AirdropStr-v0", "repro.airdrop.env:AirdropEnv", force=True)
        env = make("AirdropStr-v0", rk_order=3)
        assert env.unwrapped.rk_order == 3
