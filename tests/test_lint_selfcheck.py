"""The lint rules are themselves regression-tested here.

Three layers:

* fixtures — every rule RPR001–RPR005 (plus RPR000) must fire on its
  known-bad snippet and stay silent on the matching good example;
* contracts — every cross-file contract rule RPR101–RPR106 must fire on
  the deliberately-drifted mini-tree and stay silent on the real repo;
* self-check — ``repro lint src/`` over the actual codebase is clean
  (zero non-suppressed findings, every suppression carries a reason).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    LintEngine,
    default_project_rules,
    default_rules,
    render_json,
    render_text,
    rule_table,
)
from repro.analysis.engine import Finding
from repro.analysis.report import report_payload
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"
FIXTURES = Path(__file__).parent / "lint_fixtures"
CONTRACTS_BAD = FIXTURES / "contracts_bad"


def lint_file(relative: str):
    engine = LintEngine()  # per-file rules only; contracts tested separately
    return engine.run([FIXTURES / relative])


# ------------------------------------------------------------- AST rules
BAD_EXPECTATIONS = [
    ("rl/rpr001_bad.py", "RPR001", 4),
    ("frameworks/rpr002_bad.py", "RPR002", 3),
    ("core/rpr003_bad.py", "RPR003", 4),
    ("airdrop/rpr004_bad.py", "RPR004", 1),
    ("exec/rpr005_bad.py", "RPR005", 2),
    ("exec/rpr000_bad.py", "RPR000", 1),
    ("net/rpr007_bad.py", "RPR007", 5),
    ("net/rpr008_bad.py", "RPR008", 3),
    ("serve/rpr009_bad.py", "RPR009", 4),
]


@pytest.mark.parametrize("relative, rule_id, n_expected", BAD_EXPECTATIONS)
def test_rule_fires_on_bad_fixture(relative, rule_id, n_expected):
    report = lint_file(relative)
    hits = [f for f in report.active() if f.rule == rule_id]
    assert len(hits) == n_expected, render_text(report)
    for finding in hits:
        assert finding.line > 0 and finding.path.endswith(relative)


@pytest.mark.parametrize(
    "relative",
    [
        "rl/rpr001_good.py",
        "frameworks/rpr002_good.py",
        "core/rpr003_good.py",
        "airdrop/rpr004_good.py",
        "exec/rpr005_good.py",
        "net/rpr007_good.py",
        "net/rpr008_good.py",
        "serve/rpr009_good.py",
        "other/scoped_silent.py",
    ],
)
def test_rule_silent_on_good_fixture(relative):
    report = lint_file(relative)
    assert report.active() == [], render_text(report)


def test_reasonless_suppression_still_suppresses_but_flags_rpr000():
    report = lint_file("exec/rpr000_bad.py")
    assert [f.rule for f in report.active()] == ["RPR000"]
    assert [f.rule for f in report.suppressed()] == ["RPR005"]
    assert report.suppressed()[0].reason is None


def test_suppression_with_reason_is_recorded():
    report = lint_file("airdrop/rpr004_good.py")
    reasons = [f.reason for f in report.suppressed() if f.rule == "RPR004"]
    assert reasons == ["integer count, no rounding"]


# ------------------------------------------------------------- contracts
def test_every_contract_rule_fires_on_drifted_tree():
    fired: dict[str, list[Finding]] = {}
    for rule in default_project_rules():
        fired[rule.rule_id] = list(rule.check_project(CONTRACTS_BAD))
    for rule_id, findings in fired.items():
        assert findings, f"{rule_id} did not fire on the drifted fixture tree"
        for finding in findings:
            assert finding.rule == rule_id
            assert finding.line > 0


def test_contract_drift_messages_name_the_drifted_fields():
    by_rule = {
        rule.rule_id: " | ".join(
            f.message for f in rule.check_project(CONTRACTS_BAD)
        )
        for rule in default_project_rules()
    }
    assert "'metrics'" in by_rule["RPR101"]
    assert "'seed'" in by_rule["RPR102"]
    assert "secret_field" in by_rule["RPR103"] and "phantom_key" in by_rule["RPR103"]
    assert "'derived'" in by_rule["RPR104"]
    assert "orphan_flag" in by_rule["RPR105"]
    assert "ghost_param" in by_rule["RPR106"] and "phantom_param" in by_rule["RPR106"]


def test_contract_rules_anchor_on_real_repo_files():
    # a renamed module must break this test, not silently skip the rule
    for rule in default_project_rules():
        paths = [
            value
            for value in vars(rule).values()
            if isinstance(value, str) and value.endswith(".py")
        ]
        assert paths, f"{rule.rule_id} declares no target paths"
        for relative in paths:
            assert (REPO_ROOT / relative).is_file(), (rule.rule_id, relative)


def test_contract_rules_pass_on_real_repo():
    for rule in default_project_rules():
        findings = list(rule.check_project(REPO_ROOT))
        assert findings == [], (rule.rule_id, [f.message for f in findings])


# ------------------------------------------------------------- self-check
def test_lint_selfcheck_src_is_clean():
    engine = LintEngine(project_rules=default_project_rules())
    report = engine.run([SRC], repo_root=REPO_ROOT)
    assert report.n_files > 50
    assert report.active() == [], render_text(report)
    for finding in report.suppressed():
        assert finding.reason, f"reasonless suppression at {finding.location()}"


def test_rule_table_covers_every_default_rule():
    ids = {row[0] for row in rule_table()}
    for rule in default_rules():
        assert rule.rule_id in ids
    for rule in default_project_rules():
        assert rule.rule_id in ids


# ------------------------------------------------------ JSON + CLI surface
def test_json_report_round_trips_and_is_stable_ordered():
    engine = LintEngine()
    report = engine.run([FIXTURES])
    rendered = render_json(report)
    decoded = json.loads(rendered)
    assert decoded == report_payload(report)
    keys = [
        (f["path"], f["line"], f["col"], f["rule"]) for f in decoded["findings"]
    ]
    assert keys == sorted(keys)
    assert decoded["summary"]["active"] == len(report.active())
    assert decoded["format_version"] == 1


def test_cli_lint_json_output_parses(capsys):
    code = main(
        ["lint", str(FIXTURES / "exec" / "rpr005_bad.py"), "--format", "json",
         "--no-contracts"]
    )
    assert code == 1
    decoded = json.loads(capsys.readouterr().out)
    assert decoded["summary"]["active"] == 2
    assert {f["rule"] for f in decoded["findings"]} == {"RPR005"}


def test_cli_lint_src_is_clean(capsys):
    assert main(["lint", str(SRC)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_lint_rule_filter_and_errors(capsys, tmp_path):
    assert main(["lint", str(FIXTURES / "rl"), "--rules", "RPR002"]) == 0
    assert main(["lint", str(FIXTURES / "rl"), "--rules", "RPR001"]) == 1
    assert main(["lint", str(tmp_path / "missing")]) == 2
    assert main(["lint", "--list-rules"]) == 0
    assert "RPR101" in capsys.readouterr().out


def test_cli_lint_writes_json_artifact(tmp_path, capsys):
    artifact = tmp_path / "lint.json"
    code = main(
        ["lint", str(FIXTURES / "rl"), "--no-contracts", "--output", str(artifact)]
    )
    assert code == 1
    decoded = json.loads(artifact.read_text())
    assert decoded["summary"]["active"] == 4
    capsys.readouterr()
