"""Tests for the paper-specific experiment definitions."""

from __future__ import annotations

import numpy as np
import pytest

import repro.airdrop  # noqa: F401
from repro.core import Configuration
from repro.paper import (
    PAPER_ANCHORS,
    PAPER_FRONTS,
    TABLE1_CONFIGS,
    AirdropCaseStudy,
    Scale,
    Table1Explorer,
    airdrop_parameter_space,
    compare_all,
    multi_node_needs_rllib,
    paper_metrics,
    paper_rankers,
    predict_anchor_minutes,
    table1_campaign,
)
from repro.paper.figures import FigureComparison


class TestTable1Spec:
    def test_eighteen_rows(self):
        assert sorted(TABLE1_CONFIGS) == list(range(1, 19))

    def test_rk_column_matches_extraction(self):
        """The surviving Table I column: 3,3,3,5,5,5,8,8 | 3,3,3,8,8 | 3,3,8,8,8."""
        expected = [3, 3, 3, 5, 5, 5, 8, 8, 3, 3, 3, 8, 8, 3, 3, 8, 8, 8]
        assert [TABLE1_CONFIGS[i]["rk_order"] for i in range(1, 19)] == expected

    def test_framework_grouping(self):
        assert all(TABLE1_CONFIGS[i]["framework"] == "rllib" for i in range(1, 9))
        assert all(TABLE1_CONFIGS[i]["framework"] == "tfagents" for i in range(9, 14))
        assert all(TABLE1_CONFIGS[i]["framework"] == "stable" for i in range(14, 19))

    def test_narrative_constraints(self):
        # sol 2: fastest config — RLlib PPO 2n 4c
        assert TABLE1_CONFIGS[2] == {
            "rk_order": 3, "framework": "rllib", "algorithm": "ppo",
            "n_nodes": 2, "cores_per_node": 4,
        }
        # sols 7/8 identical except the node count
        c7, c8 = dict(TABLE1_CONFIGS[7]), dict(TABLE1_CONFIGS[8])
        assert c7.pop("n_nodes") == 1 and c8.pop("n_nodes") == 2
        assert c7 == c8
        # sol 11: TFA 1n 4c; sol 10 the 2-core twin
        assert TABLE1_CONFIGS[11]["cores_per_node"] == 4
        assert TABLE1_CONFIGS[10]["cores_per_node"] == 2
        # sol 14: SB PPO RK3 with 2 cores; sol 16: SB PPO RK8 with 4 cores
        assert TABLE1_CONFIGS[14]["cores_per_node"] == 2
        assert TABLE1_CONFIGS[16]["cores_per_node"] == 4

    def test_all_rows_valid_in_space(self):
        space = airdrop_parameter_space()
        for values in TABLE1_CONFIGS.values():
            space.validate(dict(values))

    def test_multi_node_constraint(self):
        assert multi_node_needs_rllib({"n_nodes": 2, "framework": "rllib"})
        assert not multi_node_needs_rllib({"n_nodes": 2, "framework": "stable"})
        assert multi_node_needs_rllib({"n_nodes": 1, "framework": "stable"})


class TestParameterSpace:
    def test_five_parameters(self):
        space = airdrop_parameter_space()
        assert set(space.names) == {
            "rk_order", "framework", "algorithm", "n_nodes", "cores_per_node",
        }

    def test_kind_classification(self):
        space = airdrop_parameter_space()
        assert [p.name for p in space.by_kind("environment")] == ["rk_order"]
        assert {p.name for p in space.by_kind("system")} == {"n_nodes", "cores_per_node"}

    def test_grid_size(self):
        # full grid 72; multi-node rows only valid for rllib → 48
        assert airdrop_parameter_space().grid_size() == 48


class TestMetricsAndRankers:
    def test_paper_metrics(self):
        ms = paper_metrics()
        assert ms.names == ["reward", "computation_time", "power_consumption"]

    def test_paper_rankers_are_figures(self):
        names = [r.name for r in paper_rankers()]
        assert names == ["fig4", "fig5", "fig6"]

    def test_paper_front_axes(self):
        assert PAPER_FRONTS["fig4"][0] == ("reward", "computation_time")
        assert PAPER_FRONTS["fig6"][1] == frozenset({11, 14, 16})


class TestCalibration:
    @pytest.mark.parametrize("solution", sorted(PAPER_ANCHORS))
    def test_anchor_predictions_within_10_percent(self, solution):
        """The closed-form calibration must reproduce the paper's minutes."""
        predicted = predict_anchor_minutes(solution)
        expected = PAPER_ANCHORS[solution][4]
        assert predicted == pytest.approx(expected, rel=0.10), (
            f"solution {solution}: predicted {predicted:.1f} min vs paper {expected}"
        )

    def test_scale_factor(self):
        assert Scale(real_steps=20_000, paper_steps=200_000).factor == 10.0
        with pytest.raises(ValueError):
            Scale(real_steps=0)


class TestExplorer:
    def test_replays_in_order(self):
        space = airdrop_parameter_space()
        explorer = Table1Explorer(space)
        ids = []
        while True:
            config = explorer.ask()
            if config is None:
                break
            ids.append(config.trial_id)
            assert config.as_dict() == TABLE1_CONFIGS[config.trial_id]
        assert ids == list(range(1, 19))


class TestCaseStudy:
    def test_evaluate_reports_all_metrics(self):
        study = AirdropCaseStudy(scale=Scale(real_steps=1200))
        config = Configuration(TABLE1_CONFIGS[11], trial_id=11)
        out = study.evaluate(config, seed=0)
        for key in ("reward", "computation_time", "power_consumption", "eval_reward"):
            assert key in out
        assert out["computation_time"] > 0
        assert out["power_consumption"] > 0
        assert 11 in study.results  # TrainResult retained

    def test_progress_callback_forwarded(self):
        study = AirdropCaseStudy(scale=Scale(real_steps=4000))
        config = Configuration(TABLE1_CONFIGS[16], trial_id=16)
        calls = []

        def progress(step, value):
            calls.append(step)
            return len(calls) >= 2  # prune quickly

        out = study.evaluate(config, seed=0, progress=progress)
        assert len(calls) == 2
        assert out["diag_real_steps"] < 4000


class TestFigureComparison:
    def test_jaccard_and_recall(self):
        c = FigureComparison("fig4", frozenset({2, 8, 11}), frozenset({2, 5, 11}))
        assert c.intersection == {2, 11}
        assert c.jaccard == pytest.approx(2 / 4)
        assert c.recall == pytest.approx(2 / 3)
        assert "fig4" in c.describe()

    def test_empty_paper_front(self):
        c = FigureComparison("x", frozenset(), frozenset())
        assert c.jaccard == 1.0
        assert c.recall == 1.0


class TestMiniCampaign:
    def test_campaign_end_to_end_tiny(self):
        """A heavily scaled-down campaign over 3 table rows must complete
        and produce all three figure rankings."""

        class ThreeRowExplorer(Table1Explorer):
            def __init__(self, space):
                super().__init__(space)
                self._rows = [2, 11, 16]

        campaign = table1_campaign(
            seed=0,
            scale=Scale(real_steps=1500),
            explorer=ThreeRowExplorer(airdrop_parameter_space()),
        )
        report = campaign.run()
        assert report.meta["n_completed"] == 3
        assert set(report.rankings) == {"fig4", "fig5", "fig6"}
        comparisons = compare_all(report)
        assert len(comparisons) == 3
        # structural facts that hold at any scale:
        table = {t.trial_id: t.objectives for t in report.table}
        assert table[2]["computation_time"] < table[16]["computation_time"]
        assert table[11]["power_consumption"] < table[2]["power_consumption"]
        assert table[11]["power_consumption"] < table[16]["power_consumption"]


class TestTimeToThreshold:
    def test_crossing_run_reports_partial_time(self):
        from repro.frameworks import TrainResult, TrainSpec
        from repro.cluster import Trace

        study = AirdropCaseStudy(convergence_threshold=-1.0)
        result = TrainResult(
            framework="stable",
            spec=TrainSpec(),
            reward=-0.5,
            eval_reward=-0.5,
            computation_time_s=1000.0,
            energy_kj=10.0,
            trace=Trace(),
            learning_curve=[(1000, -3.0), (2000, -0.9), (3000, -0.4)],
            diagnostics={"real_steps": 4000.0},
        )
        assert study._time_to_threshold(result) == pytest.approx(1000.0 * 2000 / 4000)

    def test_never_crossing_pays_double(self):
        from repro.frameworks import TrainResult, TrainSpec
        from repro.cluster import Trace

        study = AirdropCaseStudy()
        result = TrainResult(
            framework="stable",
            spec=TrainSpec(),
            reward=-5.0,
            eval_reward=-5.0,
            computation_time_s=1000.0,
            energy_kj=10.0,
            trace=Trace(),
            learning_curve=[(1000, -5.0)],
            diagnostics={"real_steps": 1000.0},
        )
        assert study._time_to_threshold(result) == pytest.approx(2000.0)

    def test_reported_by_evaluate(self):
        study = AirdropCaseStudy(scale=Scale(real_steps=1500))
        config = Configuration(TABLE1_CONFIGS[16], trial_id=16)
        out = study.evaluate(config, seed=0)
        assert "time_to_threshold" in out
        assert out["time_to_threshold"] > 0
        assert "bandwidth_usage" in out
