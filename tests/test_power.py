"""Tests for the CPU power model and energy accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    ClusterSimulator,
    CPUPowerModel,
    energy_from_trace,
    paper_testbed,
)


class TestPowerCurve:
    def test_idle_power(self):
        model = CPUPowerModel(idle_w=10.0, dynamic_w=20.0)
        assert model.power(0, 4) == pytest.approx(10.0)

    def test_full_load(self):
        model = CPUPowerModel(idle_w=10.0, dynamic_w=20.0)
        assert model.power(4, 4) == pytest.approx(30.0)

    def test_linear_interpolation(self):
        model = CPUPowerModel(idle_w=10.0, dynamic_w=20.0, alpha=1.0)
        assert model.power(2, 4) == pytest.approx(20.0)

    def test_alpha_concavity(self):
        concave = CPUPowerModel(idle_w=0.0, dynamic_w=10.0, alpha=0.5)
        convex = CPUPowerModel(idle_w=0.0, dynamic_w=10.0, alpha=2.0)
        assert concave.power(1, 4) > convex.power(1, 4)

    def test_load_clipped(self):
        model = CPUPowerModel(idle_w=0.0, dynamic_w=10.0)
        assert model.power(10, 4) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CPUPowerModel(idle_w=-1.0)
        with pytest.raises(ValueError):
            CPUPowerModel(alpha=0.0)
        with pytest.raises(ValueError):
            CPUPowerModel().power(1, 0)


class TestEnergyIntegration:
    def test_idle_machine(self):
        model = CPUPowerModel(idle_w=10.0, dynamic_w=20.0)
        energy = model.energy(np.array([]), np.array([]), 4, horizon=100.0)
        assert energy == pytest.approx(1000.0)

    def test_piecewise_segments(self):
        # busy 2 cores on [0, 10), idle on [10, 20)
        model = CPUPowerModel(idle_w=10.0, dynamic_w=20.0)
        times = np.array([0.0, 10.0])
        busy = np.array([2, 0])
        energy = model.energy(times, busy, 4, horizon=20.0)
        assert energy == pytest.approx(20.0 * 10 + 10.0 * 10)

    def test_zero_horizon(self):
        model = CPUPowerModel()
        assert model.energy(np.array([0.0]), np.array([1]), 4, horizon=0.0) == 0.0

    def test_idle_lead_in_billed(self):
        model = CPUPowerModel(idle_w=5.0, dynamic_w=0.0)
        times = np.array([10.0])
        busy = np.array([4])
        energy = model.energy(times, busy, 4, horizon=20.0)
        assert energy == pytest.approx(5.0 * 20.0)


class TestEnergyFromTrace:
    def test_only_allocated_nodes_billed(self):
        sim = ClusterSimulator(paper_testbed(2))
        sim.task("t", 0, duration=10.0, cores=4)
        trace = sim.run()
        model = CPUPowerModel(idle_w=10.0, dynamic_w=10.0)
        one = energy_from_trace(trace, sim.spec, model, nodes_allocated=[0])
        both = energy_from_trace(trace, sim.spec, model, nodes_allocated=[0, 1])
        assert one.per_node_joules[1] == 0.0
        assert both.per_node_joules[1] == pytest.approx(100.0)  # idle second node
        assert both.total_joules > one.total_joules

    def test_full_load_energy(self):
        sim = ClusterSimulator(paper_testbed(1))
        sim.task("t", 0, duration=60.0, cores=4)
        trace = sim.run()
        model = CPUPowerModel(idle_w=13.0, dynamic_w=28.0)
        report = energy_from_trace(trace, sim.spec, model, nodes_allocated=[0])
        assert report.total_joules == pytest.approx(41.0 * 60.0)
        assert report.mean_power_w == pytest.approx(41.0)
        assert report.total_kilojoules == pytest.approx(2.46)

    def test_partial_utilization(self):
        sim = ClusterSimulator(paper_testbed(1))
        sim.task("t", 0, duration=100.0, cores=2)
        trace = sim.run()
        model = CPUPowerModel(idle_w=10.0, dynamic_w=20.0)
        report = energy_from_trace(trace, sim.spec, model)
        assert report.total_joules == pytest.approx((10 + 10) * 100.0)

    def test_horizon_override(self):
        sim = ClusterSimulator(paper_testbed(1))
        sim.task("t", 0, duration=10.0, cores=4)
        trace = sim.run()
        model = CPUPowerModel(idle_w=10.0, dynamic_w=10.0)
        report = energy_from_trace(trace, sim.spec, model, horizon=20.0)
        assert report.total_joules == pytest.approx(20 * 10 + 10 * 10)

    def test_spreading_work_pays_double_idle(self):
        """The paper's §VI-B observation: spreading the same work over two
        half-loaded nodes pays two idle-power floors, so it costs more
        energy than packing one node."""
        model = CPUPowerModel(idle_w=13.0, dynamic_w=28.0)

        # 4 parallel tasks packed on one node (100% utilization)
        sim1 = ClusterSimulator(paper_testbed(2))
        for i in range(4):
            sim1.task(f"t{i}", 0, duration=3600.0)
        e1 = energy_from_trace(sim1.run(), sim1.spec, model, nodes_allocated=[0])

        # the same 4 tasks spread 2+2 (both nodes 50% utilized)
        sim2 = ClusterSimulator(paper_testbed(2))
        for i in range(4):
            sim2.task(f"t{i}", i % 2, duration=3600.0)
        e2 = energy_from_trace(sim2.run(), sim2.spec, model, nodes_allocated=[0, 1])

        assert sim2.makespan == pytest.approx(sim1.makespan)
        assert e2.total_joules > e1.total_joules
