"""Tests for distributed execution (repro.net).

Covers the wire protocol (framing, timeouts, corruption), the handshake
guards (protocol version, code-version tag, duplicate names), the
determinism matrix extension (a remote campaign fingerprints identically
to serial/thread/process), failure handling (silent workers reaped,
kill -9 mid-campaign recovered through the retry policy, resume under a
different topology warned about) and the worker-side outcome cache.
"""

from __future__ import annotations

import base64
import os
import socket
import struct
import subprocess
import sys
import threading
import time
import warnings

import pytest

from repro.core import (
    Campaign,
    Categorical,
    Configuration,
    GridSearch,
    Metric,
    MetricSet,
    ParameterSpace,
)
from repro.core.serialization import table_fingerprint
from repro.exec import (
    CampaignJournal,
    ProcessExecutor,
    RetryPolicy,
    TrialCache,
    TrialOutcome,
    TrialTask,
)
from repro.faults import WorkerKiller
from repro.net import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    AuthenticationError,
    ConnectionClosed,
    FrameStream,
    ProtocolError,
    RemoteExecutor,
    WorkerAgent,
    decode_payload,
    encode_payload,
    recv_frame,
    send_frame,
)
from repro.net.worker import EXIT_CONNECT_FAILED, EXIT_OK, EXIT_REJECTED
from repro.obs import EVT_WORKER_JOINED, EVT_WORKER_LOST, RingBufferSink, Telemetry

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
TESTS_DIR = os.path.dirname(os.path.abspath(__file__))


def _silent(message: str) -> None:
    pass


# --------------------------------------------------------------- fixtures
# module-level so they pickle for out-of-process workers
class RemoteCaseStudy:
    """quality/cost follow the config; deterministic and cacheable."""

    def __init__(self, sleep_s=0.0):
        self.sleep_s = sleep_s

    def evaluate(self, config, seed, progress=None):
        if self.sleep_s:
            time.sleep(self.sleep_s)
        return {
            "reward": float(config["quality"]) + seed * 0.001,
            "time": float(config["cost"]),
        }

    def cache_key(self):
        return "remote-case-study-v1"


def space():
    return ParameterSpace(
        [Categorical("quality", [1, 2, 3, 4]), Categorical("cost", [10, 20])]
    )


def metrics():
    return MetricSet(
        [Metric(name="reward", direction="max"), Metric(name="time", direction="min")]
    )


def campaign(study=None, **kwargs):
    return Campaign(
        study if study is not None else RemoteCaseStudy(),
        space(),
        GridSearch(space()),
        metrics(),
        seed_strategy="increment",
        **kwargs,
    )


def run_remote_campaign(
    n_workers=2, max_workers=None, worker_kwargs=None, study=None,
    secret=None, **campaign_kwargs
):
    """One campaign against a fresh loopback fleet of in-process agents."""
    executor = RemoteExecutor(
        max_workers=max_workers or n_workers, heartbeat_timeout=10.0,
        secret=secret,
    )
    host, port = executor.address
    agents = [
        WorkerAgent(host, port, name=f"w{i}", log=_silent, secret=secret,
                    **(worker_kwargs or {}))
        for i in range(n_workers)
    ]
    threads = [
        threading.Thread(target=agent.run, daemon=True) for agent in agents
    ]
    for thread in threads:
        thread.start()
    try:
        executor.wait_for_workers(n_workers, timeout=30.0)
        report = campaign(study, executor=executor, **campaign_kwargs).run()
    finally:
        executor.shutdown()
        for thread in threads:
            thread.join(timeout=10.0)
    return report, agents


def spawn_worker_process(host, port, extra_args=()):
    """A real ``repro worker`` subprocess pointed at the coordinator."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        # tests dir too: the pickled case study lives in this module
        [SRC_DIR, TESTS_DIR, env.get("PYTHONPATH", "")]
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", f"{host}:{port}", "--no-cache", *extra_args],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


# ---------------------------------------------------------------- protocol
class TestProtocol:
    def pair(self):
        a, b = socket.socketpair()
        a.settimeout(5.0)
        b.settimeout(5.0)
        return a, b

    def test_frame_round_trip(self):
        a, b = self.pair()
        try:
            send_frame(a, {"type": "hello", "slots": 2, "name": "w"})
            frame = recv_frame(b, timeout=5.0)
            assert frame == {"type": "hello", "slots": 2, "name": "w"}
        finally:
            a.close()
            b.close()

    def test_idle_timeout_between_frames_returns_none(self):
        a, b = self.pair()
        try:
            assert recv_frame(b, timeout=0.05) is None
        finally:
            a.close()
            b.close()

    def test_eof_raises_connection_closed(self):
        a, b = self.pair()
        a.close()
        try:
            with pytest.raises(ConnectionClosed):
                recv_frame(b, timeout=1.0)
        finally:
            b.close()

    def test_mid_frame_stall_is_a_protocol_error(self):
        a, b = self.pair()
        try:
            a.sendall(struct.pack(">I", 64) + b'{"type":')  # announce 64, send 8
            with pytest.raises(ProtocolError, match="stalled mid-frame"):
                recv_frame(b, timeout=0.1)
        finally:
            a.close()
            b.close()

    def test_oversize_announcement_is_rejected_without_allocating(self):
        a, b = self.pair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="corrupt"):
                recv_frame(b, timeout=1.0)
        finally:
            a.close()
            b.close()

    def test_oversize_send_is_refused_locally(self):
        a, b = self.pair()
        try:
            with pytest.raises(ProtocolError, match="exceeds"):
                send_frame(a, {"type": "task", "payload": "x" * (MAX_FRAME_BYTES + 1)})
        finally:
            a.close()
            b.close()

    @pytest.mark.parametrize("body", [b"not json at all", b"[1, 2, 3]", b'"str"'])
    def test_garbage_bodies_are_protocol_errors(self, body):
        a, b = self.pair()
        try:
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError):
                recv_frame(b, timeout=1.0)
        finally:
            a.close()
            b.close()

    def test_partial_length_prefix_timeout_is_a_protocol_error(self):
        # returning None after consuming 1-3 prefix bytes would silently
        # desynchronize the stream; it must surface as a protocol error
        a, b = self.pair()
        try:
            a.sendall(b"\x00\x00")  # 2 of the 4 length-prefix bytes
            with pytest.raises(ProtocolError, match="length-prefix"):
                recv_frame(b, timeout=0.1)
        finally:
            a.close()
            b.close()

    def test_send_frame_arms_its_own_write_timeout(self):
        from repro.net.protocol import SEND_TIMEOUT

        a, b = self.pair()
        try:
            b.settimeout(0.001)  # a reader left a near-zero timeout behind
            send_frame(b, {"type": "heartbeat"})
            # the write deadline was re-armed, not inherited from the reader
            assert b.gettimeout() == SEND_TIMEOUT
            assert recv_frame(a, timeout=5.0) == {"type": "heartbeat"}
        finally:
            a.close()
            b.close()

    def test_payload_round_trips_arbitrary_objects(self):
        task = TrialTask(
            seq=3,
            config=Configuration({"quality": 2, "cost": 10}, trial_id=4),
            seed=7,
            case_study=RemoteCaseStudy(),
        )
        clone = decode_payload(encode_payload(task))
        assert clone.seq == 3 and clone.seed == 7
        assert clone.config.as_dict() == {"quality": 2, "cost": 10}


# --------------------------------------------------------------- handshake
class TestHandshake:
    def test_code_tag_skew_is_rejected_with_exit_code(self):
        executor = RemoteExecutor(max_workers=1)
        host, port = executor.address
        try:
            agent = WorkerAgent(host, port, code_tag="deadbeefcafe", log=_silent)
            assert agent.run() == EXIT_REJECTED
            assert executor.n_workers == 0
        finally:
            executor.shutdown()

    def test_protocol_version_skew_is_rejected(self):
        executor = RemoteExecutor(max_workers=1)
        host, port = executor.address
        sock = socket.create_connection((host, port), timeout=5.0)
        try:
            send_frame(sock, {
                "type": "hello", "version": PROTOCOL_VERSION + 1,
                "code_tag": executor.code_tag, "name": "old", "slots": 1,
            })
            reply = recv_frame(sock, timeout=5.0)
            assert reply["type"] == "reject"
            assert "protocol version" in reply["reason"]
        finally:
            sock.close()
            executor.shutdown()

    def test_unreachable_coordinator_exits_connect_failed(self):
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()
        agent = WorkerAgent("127.0.0.1", port, connect_timeout=2.0, log=_silent)
        assert agent.run() == EXIT_CONNECT_FAILED

    def test_duplicate_worker_names_are_uniquified(self):
        executor = RemoteExecutor(max_workers=2)
        host, port = executor.address
        agents = [
            WorkerAgent(host, port, name="twin", log=_silent) for _ in range(2)
        ]
        threads = [threading.Thread(target=a.run, daemon=True) for a in agents]
        for thread in threads:
            thread.start()
        try:
            executor.wait_for_workers(2, timeout=10.0)
            with executor._lock:
                names = set(executor._workers)
        finally:
            executor.shutdown()
            for thread in threads:
                thread.join(timeout=10.0)
        assert "twin" in names and len(names) == 2
        suffixed = (names - {"twin"}).pop()
        assert suffixed.startswith("twin#")
        # each agent adopted the name the coordinator assigned it
        assert {agent.name for agent in agents} == names

    def test_wait_for_workers_times_out(self):
        executor = RemoteExecutor(max_workers=1)
        try:
            with pytest.raises(TimeoutError, match="0/1 workers"):
                executor.wait_for_workers(1, timeout=0.2)
        finally:
            executor.shutdown()

    def test_submit_after_shutdown_is_an_error(self):
        executor = RemoteExecutor(max_workers=1)
        executor.shutdown()
        task = TrialTask(
            seq=0,
            config=Configuration({"quality": 1, "cost": 10}, trial_id=1),
            seed=0,
            case_study=RemoteCaseStudy(),
        )
        with pytest.raises(RuntimeError, match="shut down"):
            executor.submit(task)


# ----------------------------------------------------------- authentication
class TestAuthentication:
    """Pickled payloads must never be decoded for unauthenticated peers."""

    def pair(self):
        a, b = socket.socketpair()
        a.settimeout(5.0)
        b.settimeout(5.0)
        return a, b

    def test_signed_frame_round_trips_and_strips_auth(self):
        a, b = self.pair()
        try:
            send_frame(a, {"type": "task", "seq": 1}, secret="hunter2")
            frame = recv_frame(b, timeout=5.0, secret="hunter2")
            assert frame == {"type": "task", "seq": 1}
        finally:
            a.close()
            b.close()

    def test_unsigned_frame_is_refused_when_secret_required(self):
        a, b = self.pair()
        try:
            send_frame(a, {"type": "outcome", "payload": "gadget"})
            with pytest.raises(AuthenticationError):
                recv_frame(b, timeout=5.0, secret="hunter2")
        finally:
            a.close()
            b.close()

    def test_wrong_secret_and_tampering_are_refused(self):
        a, b = self.pair()
        try:
            send_frame(a, {"type": "task", "seq": 1}, secret="other")
            with pytest.raises(AuthenticationError):
                recv_frame(b, timeout=5.0, secret="hunter2")
            # a valid MAC over different content must not verify either
            send_frame(a, {"type": "task", "seq": 1, "auth": "f" * 64})
            with pytest.raises(AuthenticationError):
                recv_frame(b, timeout=5.0, secret="hunter2")
        finally:
            a.close()
            b.close()

    def test_handshake_with_matching_secret_runs_a_full_campaign(self):
        report, agents = run_remote_campaign(n_workers=2, secret="s3cret")
        assert report.meta["n_completed"] == 8
        assert sum(a.n_executed for a in agents) == 8

    def test_worker_without_the_secret_is_rejected(self):
        executor = RemoteExecutor(max_workers=1, secret="s3cret")
        host, port = executor.address
        try:
            # no secret at all: the coordinator explains the rejection
            agent = WorkerAgent(host, port, log=_silent)
            assert agent.run() == EXIT_REJECTED
            # wrong secret: the reject frame fails *our* verification,
            # which is still a refusal, never a connected worker
            agent = WorkerAgent(host, port, secret="wr0ng", log=_silent)
            assert agent.run() in (EXIT_REJECTED, EXIT_CONNECT_FAILED)
            assert executor.n_workers == 0
        finally:
            executor.shutdown()

    def test_non_loopback_listen_without_secret_warns(self):
        with pytest.warns(UserWarning, match="secret"):
            executor = RemoteExecutor(max_workers=1, host="0.0.0.0")
        executor.shutdown()

    def test_loopback_listen_without_secret_is_silent(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            executor = RemoteExecutor(max_workers=1)
        executor.shutdown()
        assert not [w for w in caught if "secret" in str(w.message)]


# ------------------------------------------------------ determinism matrix
class TestRemoteDeterminism:
    """The network must be invisible to the results table."""

    def fingerprint(self, executor, **kwargs):
        report = campaign(executor=executor, max_workers=3, **kwargs).run()
        assert report.meta["n_completed"] == 8
        return table_fingerprint(report.table)

    def test_remote_matches_every_other_backend(self):
        reference = self.fingerprint(None)
        assert self.fingerprint("thread") == reference
        assert self.fingerprint(ProcessExecutor(3, mp_context="fork")) == reference
        report, agents = run_remote_campaign(n_workers=2)
        assert report.meta["n_completed"] == 8
        assert report.meta["executor"] == "remote"
        assert table_fingerprint(report.table) == reference
        # work-stealing: both workers executed, everything ran exactly once
        assert sum(a.n_executed for a in agents) == 8

    def test_multi_slot_worker_matches_serial(self):
        reference = self.fingerprint(None)
        report, agents = run_remote_campaign(
            n_workers=1, max_workers=2, worker_kwargs={"slots": 2}
        )
        assert table_fingerprint(report.table) == reference
        assert agents[0].n_executed == 8


# ------------------------------------------------------------ failure paths
class TestWorkerLoss:
    def zombie_connect(self, executor):
        """A peer that handshakes correctly, then never speaks again."""
        host, port = executor.address
        sock = socket.create_connection((host, port), timeout=5.0)
        send_frame(sock, {
            "type": "hello", "version": PROTOCOL_VERSION,
            "code_tag": executor.code_tag, "name": "zombie", "slots": 1,
        })
        welcome = recv_frame(sock, timeout=5.0)
        assert welcome["type"] == "welcome"
        return sock

    def test_silent_worker_is_reaped_and_trial_comes_back_crashed(self):
        executor = RemoteExecutor(max_workers=1, heartbeat_timeout=0.6)
        sock = self.zombie_connect(executor)
        try:
            executor.wait_for_workers(1, timeout=5.0)
            executor.submit(TrialTask(
                seq=0,
                config=Configuration({"quality": 1, "cost": 10}, trial_id=1),
                seed=0,
                case_study=RemoteCaseStudy(),
            ))
            outcomes = []
            deadline = time.monotonic() + 10.0
            while not outcomes and time.monotonic() < deadline:
                outcomes = executor.poll(0.2)
            assert len(outcomes) == 1
            outcome = outcomes[0]
            assert outcome.status == "crashed"
            assert outcome.retryable
            assert "zombie" in outcome.error
            assert executor.n_workers == 0
        finally:
            sock.close()
            executor.shutdown()

    def test_worker_loss_emits_fleet_telemetry(self):
        sink = RingBufferSink()
        telem = Telemetry(sink)
        executor = RemoteExecutor(
            max_workers=1, heartbeat_timeout=0.6, telemetry=telem
        )
        sock = self.zombie_connect(executor)
        try:
            executor.wait_for_workers(1, timeout=5.0)
            deadline = time.monotonic() + 10.0
            while executor.n_workers and time.monotonic() < deadline:
                time.sleep(0.05)
        finally:
            sock.close()
            executor.shutdown()
        joined = sink.events(EVT_WORKER_JOINED)
        lost = sink.events(EVT_WORKER_LOST)
        assert len(joined) == 1 and joined[0]["fields"]["worker"] == "zombie"
        assert len(lost) == 1 and "heartbeat" in lost[0]["fields"]["reason"]
        assert telem.meters.snapshot()["counters"]["net/worker_deaths"] == 1

    def test_coordinator_disappearing_ends_the_worker_cleanly(self):
        executor = RemoteExecutor(max_workers=1)
        host, port = executor.address
        agent = WorkerAgent(host, port, log=_silent)
        result = []
        thread = threading.Thread(
            target=lambda: result.append(agent.run()), daemon=True
        )
        thread.start()
        executor.wait_for_workers(1, timeout=10.0)
        executor.shutdown()
        thread.join(timeout=10.0)
        assert result == [EXIT_OK]


class HangOnceCaseStudy:
    """Hangs far past any deadline on the first attempt of each trial.

    State lives on disk (a marker file per trial/seed), because the task
    pickle gives every worker a fresh copy of this object.
    """

    def __init__(self, marker_dir, hang_s=30.0):
        self.marker_dir = str(marker_dir)
        self.hang_s = hang_s

    def evaluate(self, config, seed, progress=None):
        marker = os.path.join(self.marker_dir, f"{config.trial_id}-{seed}")
        try:
            os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            time.sleep(self.hang_s)
        except FileExistsError:
            pass  # a retry: answer instantly
        return {
            "reward": float(config["quality"]) + seed * 0.001,
            "time": float(config["cost"]),
        }

    def cache_key(self):
        return "hang-once-case-study-v1"


class TestWorkerRobustness:
    """Every task frame with a seq produces exactly one outcome frame."""

    def drive(self, frame, **agent_kwargs):
        """Feed one task frame to ``_run_task``; return the outcome."""
        agent = WorkerAgent("127.0.0.1", 1, name="unit", log=_silent, **agent_kwargs)
        a, b = socket.socketpair()
        a.settimeout(5.0)
        b.settimeout(5.0)
        try:
            agent._stream = FrameStream(a)
            agent._run_task(frame)
            reply = recv_frame(b, timeout=5.0)
        finally:
            a.close()
            b.close()
        assert reply["type"] == "outcome"
        return decode_payload(reply["payload"])

    def task_frame(self, case_study=None, **task_kwargs):
        task = TrialTask(
            seq=5,
            config=Configuration({"quality": 1, "cost": 10}, trial_id=3),
            seed=0,
            case_study=case_study or RemoteCaseStudy(),
            **task_kwargs,
        )
        return {
            "type": "task",
            "seq": task.seq,
            "attempt": task.attempt,
            "payload": encode_payload(task),
        }

    def test_trial_deadline_overrun_reports_timeout(self):
        frame = self.task_frame(
            case_study=RemoteCaseStudy(sleep_s=30.0), timeout_s=0.2
        )
        outcome = self.drive(frame)
        assert outcome.status == "timeout"
        assert outcome.retryable
        assert outcome.seq == 5 and outcome.trial_id == 3
        assert "0.2" in outcome.error and "unit" in outcome.error

    def test_fast_trial_under_a_deadline_completes(self):
        outcome = self.drive(self.task_frame(timeout_s=30.0))
        assert outcome.status == "completed"
        assert outcome.measurements == {"reward": 1.0, "time": 10.0}

    def test_undecodable_payload_synthesizes_a_crashed_outcome(self):
        frame = {
            "type": "task",
            "seq": 7,
            "attempt": 1,
            "payload": base64.b64encode(b"not a pickle").decode("ascii"),
        }
        outcome = self.drive(frame)
        assert outcome.status == "crashed"
        assert outcome.retryable
        assert outcome.seq == 7 and outcome.attempt == 1
        assert "could not produce an outcome" in outcome.error

    def test_cache_store_failure_does_not_lose_the_outcome(self, tmp_path):
        cache = TrialCache(tmp_path)

        def boom(*args, **kwargs):
            raise OSError("disk full")

        cache.store_outcome = boom
        frame = self.task_frame(cache_key="b" * 32)
        outcome = self.drive(frame, cache=cache)
        assert outcome.status == "completed"
        assert outcome.measurements == {"reward": 1.0, "time": 10.0}

    def test_frame_without_a_seq_is_dropped_silently(self):
        agent = WorkerAgent("127.0.0.1", 1, name="unit", log=_silent)
        a, b = socket.socketpair()
        a.settimeout(0.2)
        b.settimeout(0.2)
        try:
            agent._stream = FrameStream(a)
            agent._run_task({"type": "task"})
            assert recv_frame(b, timeout=0.2) is None  # nothing was sent
        finally:
            a.close()
            b.close()


class TestRemoteTrialTimeout:
    def test_hung_trials_time_out_and_recover_through_retry(self, tmp_path):
        """--trial-timeout is enforced on workers, not silently dropped.

        Every trial hangs far past the deadline on its first attempt;
        the worker must abandon it, report ``timeout``, keep serving,
        and the RetryPolicy requeue must land on the same fingerprint
        as an untroubled serial run.
        """
        reference = campaign().run()
        report, agents = run_remote_campaign(
            n_workers=2,
            study=HangOnceCaseStudy(tmp_path),
            trial_timeout=0.4,
            retry=RetryPolicy(max_retries=3, backoff_s=0.0),
        )
        assert report.meta["n_completed"] == 8
        assert table_fingerprint(report.table) == table_fingerprint(reference.table)


class TestKillNineRecovery:
    def test_kill9_mid_campaign_recovers_and_resume_warns(self, tmp_path):
        """ISSUE acceptance: a SIGKILLed worker must not change the table.

        The campaign self-heals through heartbeat reaping + RetryPolicy
        requeue; the journal then resumes under a *different* topology
        (serial) and must warn about it while replaying byte-identically.
        """
        journal_path = tmp_path / "journal.jsonl"
        executor = RemoteExecutor(max_workers=2, heartbeat_timeout=2.0)
        host, port = executor.address
        procs = [spawn_worker_process(host, port) for _ in range(2)]
        killer = WorkerKiller(victim=procs[0].pid, after_trials=2)
        try:
            executor.wait_for_workers(2, timeout=60.0)
            report = campaign(
                RemoteCaseStudy(sleep_s=0.15),
                executor=executor,
                retry=RetryPolicy(max_retries=3, backoff_s=0.0),
                journal=CampaignJournal(journal_path),
            ).run(progress=killer.progress)
        finally:
            executor.shutdown()
            for proc in procs:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10.0)
        assert killer.killed == [procs[0].pid]
        assert report.meta["n_completed"] == 8
        reference = campaign().run()
        assert table_fingerprint(report.table) == table_fingerprint(reference.table)
        # --resume on a plain serial box: detected, warned, byte-identical
        with pytest.warns(UserWarning, match="topology"):
            resumed = campaign(journal=CampaignJournal.resume(journal_path)).run()
        assert resumed.meta["n_replayed"] == 8
        assert "remote" in resumed.meta["topology_warning"]
        assert table_fingerprint(resumed.table) == table_fingerprint(report.table)


# ------------------------------------------------------- topology warnings
class TestTopologyWarning:
    def test_resume_under_different_topology_warns_but_replays(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        original = campaign(journal=CampaignJournal(path)).run()
        with pytest.warns(UserWarning, match="topology"):
            resumed = campaign(
                journal=CampaignJournal.resume(path),
                executor="thread", max_workers=2,
            ).run()
        assert resumed.meta["n_replayed"] == 8
        assert "serial" in resumed.meta["topology_warning"]
        assert table_fingerprint(resumed.table) == table_fingerprint(original.table)

    def test_same_topology_resume_is_silent(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        campaign(journal=CampaignJournal(path)).run()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resumed = campaign(journal=CampaignJournal.resume(path)).run()
        assert resumed.meta.get("topology_warning") is None
        assert not [w for w in caught if "topology" in str(w.message)]


# ----------------------------------------------------- worker outcome cache
class TestOutcomeCache:
    KEY = "a" * 32

    def outcome(self, status="completed"):
        return TrialOutcome(
            seq=0, trial_id=1, attempt=0, status=status,
            measurements={"reward": 1.0, "time": 10.0},
            duration_s=0.25, checkpoints=[(1, 0.5)],
        )

    def config(self, quality=1):
        return Configuration({"quality": quality, "cost": 10}, trial_id=1)

    def test_round_trip_revalidates_config_and_seed(self, tmp_path):
        cache = TrialCache(tmp_path)
        assert cache.store_outcome(self.KEY, self.outcome(), self.config(), 7)
        hit = cache.lookup_outcome(self.KEY, self.config(), 7)
        assert hit == ({"reward": 1.0, "time": 10.0}, [(1, 0.5)], 0.25)
        # a colliding key must never replay a different config or seed
        assert cache.lookup_outcome(self.KEY, self.config(quality=2), 7) is None
        assert cache.lookup_outcome(self.KEY, self.config(), 8) is None

    @pytest.mark.parametrize("status", ["failed", "timeout", "crashed", "pruned"])
    def test_only_completed_outcomes_are_stored(self, tmp_path, status):
        cache = TrialCache(tmp_path)
        assert not cache.store_outcome(self.KEY, self.outcome(status),
                                       self.config(), 0)
        assert cache.lookup_outcome(self.KEY, self.config(), 0) is None

    def test_disk_entries_survive_restart_but_not_code_edits(self, tmp_path):
        TrialCache(tmp_path).store_outcome(self.KEY, self.outcome(),
                                           self.config(), 0)
        fresh = TrialCache(tmp_path)
        assert fresh.lookup_outcome(self.KEY, self.config(), 0) is not None
        edited = TrialCache(tmp_path, code_tag="deadbeefcafe")
        assert edited.lookup_outcome(self.KEY, self.config(), 0) is None

    def test_worker_answers_warm_trials_from_shared_cache(self, tmp_path):
        warm = str(tmp_path / "shared-cache")
        report1, agents1 = run_remote_campaign(
            n_workers=1, cache=TrialCache(warm), worker_kwargs={"cache": warm}
        )
        assert sum(a.n_executed for a in agents1) == 8
        assert sum(a.n_cache_hits for a in agents1) == 0
        # a fresh campaign-side cache misses, but the worker's shared
        # store answers every trial without re-running env steps
        report2, agents2 = run_remote_campaign(
            n_workers=1,
            cache=TrialCache(str(tmp_path / "cold-cache")),
            worker_kwargs={"cache": warm},
        )
        assert sum(a.n_executed for a in agents2) == 0
        assert sum(a.n_cache_hits for a in agents2) == 8
        assert table_fingerprint(report2.table) == table_fingerprint(report1.table)
