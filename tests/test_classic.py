"""Tests for the classic-control pack and discrete-action PPO."""

from __future__ import annotations

import numpy as np
import pytest

import repro.classic  # noqa: F401  (registers CartPole-v0 / Pendulum-v0)
from repro.classic import CartPoleEnv, PendulumEnv
from repro.envs import SyncVectorEnv, make
from repro.rl import CategoricalPPOAgent, PPOConfig


class TestCartPole:
    def test_registered_with_time_limit(self):
        env = make("CartPole-v0")
        env.reset(seed=0)
        steps = 0
        while True:
            _, _, term, trunc, _ = env.step(0 if steps % 2 == 0 else 1)
            steps += 1
            if term or trunc:
                break
        assert steps <= 500

    def test_reset_near_origin(self):
        env = CartPoleEnv()
        obs, _ = env.reset(seed=1)
        assert np.all(np.abs(obs) <= 0.05)

    def test_constant_push_terminates(self):
        env = CartPoleEnv()
        env.reset(seed=0)
        steps = 0
        while True:
            _, reward, term, _, _ = env.step(1)
            assert reward == 1.0
            steps += 1
            if term:
                break
        assert steps < 30  # constant push falls quickly

    def test_invalid_action_rejected(self):
        env = CartPoleEnv()
        env.reset(seed=0)
        with pytest.raises(ValueError):
            env.step(2)

    def test_step_before_reset(self):
        with pytest.raises(RuntimeError):
            CartPoleEnv().step(0)

    def test_rk_order_changes_cost_not_semantics(self):
        for order, stages in [(3, 3), (5, 6), (8, 12)]:
            env = CartPoleEnv(rk_order=order)
            assert env.rhs_evals_per_step == stages

    def test_determinism(self):
        def run():
            env = CartPoleEnv()
            obs, _ = env.reset(seed=5)
            out = []
            for i in range(30):
                obs, _, term, _, _ = env.step(i % 2)
                out.append(obs.copy())
                if term:
                    break
            return np.array(out)

        assert np.allclose(run(), run())

    def test_integrators_agree_at_small_dt(self):
        """At the 20 ms step the dynamics are easy: all orders agree."""

        def final(order):
            env = CartPoleEnv(rk_order=order)
            obs, _ = env.reset(seed=3)
            for i in range(20):
                obs, _, term, _, _ = env.step(i % 2)
                if term:
                    break
            return obs

        assert np.allclose(final(3), final(8), atol=1e-4)


class TestPendulum:
    def test_observation_structure(self):
        env = PendulumEnv()
        obs, _ = env.reset(seed=0)
        assert obs.shape == (3,)
        assert obs[0] ** 2 + obs[1] ** 2 == pytest.approx(1.0)

    def test_reward_is_negative_cost(self):
        env = PendulumEnv()
        env.reset(seed=0)
        _, reward, term, trunc, _ = env.step(np.array([0.0]))
        assert reward <= 0.0
        assert not term and not trunc

    def test_torque_clipped(self):
        env = PendulumEnv()
        env.reset(seed=2)
        obs1, r1, *_ = env.step(np.array([100.0]))
        env.reset(seed=2)
        obs2, r2, *_ = env.step(np.array([2.0]))
        assert np.allclose(obs1, obs2)

    def test_speed_clamped(self):
        env = PendulumEnv()
        env.reset(seed=0)
        for _ in range(100):
            obs, *_ = env.step(np.array([2.0]))
            assert abs(obs[2]) <= 8.0 + 1e-9

    def test_upright_is_zero_cost_fixed_point(self):
        env = PendulumEnv()
        env.reset(seed=0)
        env._state = np.array([0.0, 0.0])
        _, reward, *_ = env.step(np.array([0.0]))
        assert reward == pytest.approx(0.0, abs=1e-6)

    def test_registered(self):
        env = make("Pendulum-v0")
        obs, _ = env.reset(seed=0)
        assert obs.shape == (3,)


class TestCategoricalPPO:
    def test_act_shapes(self):
        agent = CategoricalPPOAgent(4, 3, seed=0)
        out = agent.act(np.zeros((5, 4)))
        assert out["action"].shape == (5,)
        assert np.all((out["action"] >= 0) & (out["action"] < 3))
        assert out["log_prob"].shape == (5,)

    def test_needs_two_actions(self):
        with pytest.raises(ValueError):
            CategoricalPPOAgent(4, 1)

    def test_deterministic_mode(self):
        agent = CategoricalPPOAgent(4, 2, seed=0)
        a = agent.act(np.ones((1, 4)), deterministic=True)["action"]
        b = agent.act(np.ones((1, 4)), deterministic=True)["action"]
        assert a == b

    def test_policy_state_roundtrip(self):
        a = CategoricalPPOAgent(4, 2, seed=0)
        b = CategoricalPPOAgent(4, 2, seed=9)
        b.load_policy_state(a.policy_state())
        obs = np.random.default_rng(0).standard_normal((3, 4))
        assert np.array_equal(
            a.act(obs, deterministic=True)["action"],
            b.act(obs, deterministic=True)["action"],
        )

    def test_learns_cartpole(self):
        """Mean episode length must grow substantially within ~25k steps."""
        n_envs = 8
        venv = SyncVectorEnv([lambda: make("CartPole-v0") for _ in range(n_envs)])
        agent = CategoricalPPOAgent(4, 2, PPOConfig(ent_coef=0.01), seed=0)
        buf = agent.make_buffer(128, n_envs)
        obs, _ = venv.reset(seed=0)
        checkpoints = []
        for it in range(24):
            buf.reset()
            for _ in range(128):
                out = agent.act(obs)
                nobs, rew, term, trunc, infos = venv.step(out["action"])
                boot = np.zeros(n_envs)
                for i, info in enumerate(infos):
                    if trunc[i] and not term[i] and "final_observation" in info:
                        boot[i] = agent.value(info["final_observation"][None])[0]
                buf.add(
                    obs,
                    out["action"].reshape(-1, 1).astype(float),
                    out["log_prob"],
                    rew,
                    out["value"],
                    term,
                    trunc,
                    boot,
                )
                obs = nobs
            buf.finish(agent.value(obs))
            agent.update(buf)
            checkpoints.append(venv.stats.recent_mean_return())
        assert checkpoints[-1] > 3 * max(checkpoints[0], 15.0)

    def test_update_stats_keys(self):
        agent = CategoricalPPOAgent(4, 2, seed=0)
        buf = agent.make_buffer(32, 2)
        rng = np.random.default_rng(0)
        obs = rng.standard_normal((2, 4))
        for _ in range(32):
            out = agent.act(obs)
            buf.add(
                obs, out["action"].reshape(-1, 1).astype(float), out["log_prob"],
                rng.standard_normal(2), out["value"], np.zeros(2), np.zeros(2), np.zeros(2),
            )
            obs = rng.standard_normal((2, 4))
        buf.finish(agent.value(obs))
        stats = agent.update(buf)
        assert {"policy_loss", "value_loss", "entropy", "approx_kl"} <= set(stats)
