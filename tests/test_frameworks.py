"""Integration tests for the framework back-ends (small real budgets)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.airdrop  # noqa: F401
from repro.frameworks import (
    FRAMEWORKS,
    CostModel,
    RLlibLike,
    StableBaselinesLike,
    TFAgentsLike,
    TrainSpec,
    get_framework,
)
from repro.rl import PPOConfig


def tiny_spec(**kw) -> TrainSpec:
    defaults = dict(
        algorithm="ppo",
        n_nodes=1,
        cores_per_node=2,
        seed=0,
        env_kwargs={"rk_order": 3},
        total_steps=1500,
        train_batch_size=256,
        eval_episodes=3,
    )
    defaults.update(kw)
    return TrainSpec(**defaults)


class TestRegistry:
    def test_all_frameworks_registered(self):
        # the paper's three frameworks plus the IMPALA extension back-end
        assert set(FRAMEWORKS) == {"rllib", "stable", "tfagents", "impala"}

    def test_get_framework_unknown(self):
        with pytest.raises(KeyError):
            get_framework("torchbeast")

    def test_instances(self):
        assert isinstance(get_framework("rllib"), RLlibLike)
        assert isinstance(get_framework("stable"), StableBaselinesLike)
        assert isinstance(get_framework("tfagents"), TFAgentsLike)


class TestValidation:
    def test_single_node_frameworks_reject_multi_node(self):
        for name in ("stable", "tfagents"):
            fw = get_framework(name)
            with pytest.raises(ValueError):
                fw.train(tiny_spec(n_nodes=2))

    def test_rllib_accepts_multi_node(self):
        fw = get_framework("rllib")
        fw.validate(tiny_spec(n_nodes=2))

    def test_too_many_cores_rejected(self):
        fw = get_framework("stable")
        with pytest.raises(ValueError):
            fw.validate(tiny_spec(cores_per_node=16))

    def test_too_many_nodes_rejected(self):
        fw = get_framework("rllib")
        with pytest.raises(ValueError):
            fw.validate(tiny_spec(n_nodes=3))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TrainSpec(algorithm="dqn")
        with pytest.raises(ValueError):
            TrainSpec(n_nodes=0)
        with pytest.raises(ValueError):
            TrainSpec(total_steps=0)


class TestLayouts:
    def test_rllib_layout_spreads_workers(self):
        layout = RLlibLike().layout(tiny_spec(n_nodes=2, cores_per_node=3))
        assert layout.worker_nodes == (0, 0, 0, 1, 1, 1)
        assert layout.stale_remote_policy
        assert layout.ships_experience

    def test_rllib_single_node_not_stale(self):
        layout = RLlibLike().layout(tiny_spec(n_nodes=1, cores_per_node=4))
        assert not layout.stale_remote_policy

    def test_single_node_layouts(self):
        for cls in (StableBaselinesLike, TFAgentsLike):
            layout = cls().layout(tiny_spec(cores_per_node=4))
            assert layout.worker_nodes == (0, 0, 0, 0)
            assert not layout.ships_experience

    def test_layout_groups(self):
        layout = RLlibLike().layout(tiny_spec(n_nodes=2, cores_per_node=2))
        assert layout.groups() == {0: [0, 1], 1: [2, 3]}


class TestPPOTraining:
    @pytest.mark.parametrize("name", ["rllib", "stable", "tfagents"])
    def test_train_produces_result(self, name):
        fw = get_framework(name)
        result = fw.train(tiny_spec())
        assert result.framework == name
        assert np.isfinite(result.reward)
        assert result.computation_time_s > 0
        assert result.energy_kj > 0
        assert result.diagnostics["episodes"] > 0
        assert len(result.learning_curve) > 0

    def test_multi_node_ships_experience(self):
        fw = get_framework("rllib")
        result = fw.train(tiny_spec(n_nodes=2))
        assert result.diagnostics["bytes_transferred"] > 0

    def test_single_node_no_network(self):
        fw = get_framework("stable")
        result = fw.train(tiny_spec())
        assert result.diagnostics["bytes_transferred"] == 0

    def test_virtual_time_scales_with_paper_steps(self):
        fw = get_framework("stable")
        r1 = fw.train(tiny_spec(paper_steps=100_000))
        r2 = fw.train(tiny_spec(paper_steps=200_000))
        assert r2.computation_time_s == pytest.approx(2 * r1.computation_time_s, rel=1e-6)

    def test_rk_order_increases_virtual_time(self):
        fw = get_framework("stable")
        t3 = fw.train(tiny_spec(env_kwargs={"rk_order": 3})).computation_time_s
        t8 = fw.train(tiny_spec(env_kwargs={"rk_order": 8})).computation_time_s
        assert t8 > t3
        # but far less than the 4x stage ratio (fixed overheads dominate)
        assert t8 / t3 < 2.0

    def test_more_cores_faster(self):
        fw = get_framework("tfagents")
        t2 = fw.train(tiny_spec(cores_per_node=2)).computation_time_s
        t4 = fw.train(tiny_spec(cores_per_node=4)).computation_time_s
        assert t4 < t2

    def test_two_nodes_faster_than_one(self):
        fw = get_framework("rllib")
        t1 = fw.train(tiny_spec(n_nodes=1, cores_per_node=4)).computation_time_s
        t2 = fw.train(tiny_spec(n_nodes=2, cores_per_node=4)).computation_time_s
        assert t2 < t1

    def test_two_nodes_more_energy_per_minute(self):
        fw = get_framework("rllib")
        r1 = fw.train(tiny_spec(n_nodes=1, cores_per_node=4))
        r2 = fw.train(tiny_spec(n_nodes=2, cores_per_node=4))
        power1 = r1.energy_kj * 1000 / r1.computation_time_s
        power2 = r2.energy_kj * 1000 / r2.computation_time_s
        assert power2 > power1

    def test_deterministic_given_seed(self):
        fw = get_framework("stable")
        r1 = fw.train(tiny_spec(seed=5))
        r2 = fw.train(tiny_spec(seed=5))
        assert r1.reward == r2.reward
        assert r1.computation_time_s == r2.computation_time_s
        assert r1.energy_kj == r2.energy_kj

    def test_different_frameworks_different_streams(self):
        ra = get_framework("stable").train(tiny_spec(cores_per_node=4))
        rb = get_framework("tfagents").train(tiny_spec(cores_per_node=4))
        assert ra.reward != rb.reward  # decorrelated seed streams

    def test_callback_can_stop_early(self):
        fw = get_framework("stable")
        calls = []

        def stop_after_two(steps, reward):
            calls.append(steps)
            return len(calls) >= 2

        result = fw.train(tiny_spec(total_steps=10_000), callback=stop_after_two)
        assert result.diagnostics["real_steps"] < 10_000

    def test_effective_ppo_framework_defaults(self):
        spec = tiny_spec()
        assert TFAgentsLike().effective_ppo(spec).n_epochs == 6
        assert StableBaselinesLike().effective_ppo(spec).n_epochs == 10
        # explicit user config is honoured verbatim
        spec_custom = tiny_spec(ppo=PPOConfig(n_epochs=3))
        assert TFAgentsLike().effective_ppo(spec_custom).n_epochs == 3


class TestSACTraining:
    def test_sac_runs_and_is_expensive(self):
        fw = get_framework("stable")
        sac = fw.train(tiny_spec(algorithm="sac", total_steps=800))
        ppo = fw.train(tiny_spec(algorithm="ppo", total_steps=800))
        assert np.isfinite(sac.reward)
        # SAC's per-step updates dominate: far more virtual time per step
        assert sac.computation_time_s > ppo.computation_time_s

    def test_sac_multi_node_ships_experience(self):
        fw = get_framework("rllib")
        result = fw.train(tiny_spec(algorithm="sac", n_nodes=2, total_steps=500))
        assert result.diagnostics["bytes_transferred"] > 0


class TestGenericEnvironments:
    """The framework layer accepts any registered continuous-action env."""

    def test_pendulum_training(self):
        import repro.classic  # noqa: F401  (registers Pendulum-v0)

        fw = get_framework("stable")
        spec = TrainSpec(
            algorithm="ppo",
            n_nodes=1,
            cores_per_node=2,
            seed=0,
            env_id="Pendulum-v0",
            env_kwargs={"rk_order": 3},
            total_steps=1200,
            eval_episodes=2,
        )
        result = fw.train(spec)
        # pendulum returns are large negative costs, not landing scores
        assert result.reward < -100
        assert np.isfinite(result.eval_reward)
        assert result.computation_time_s > 0

    def test_action_mapper_scales_to_env_bounds(self):
        from repro.envs import Box, Env
        from repro.frameworks.base import _action_mapper

        class TorqueEnv(Env):
            def __init__(self):
                self.observation_space = Box(-1, 1, shape=(1,))
                self.action_space = Box(-2.0, 2.0, shape=(1,))

        mapper = _action_mapper(TorqueEnv())
        assert np.allclose(mapper(np.array([1.0])), [2.0])
        assert np.allclose(mapper(np.array([-1.0])), [-2.0])
        assert np.allclose(mapper(np.array([0.0])), [0.0])
        assert np.allclose(mapper(np.array([5.0])), [2.0])  # clipped first

    def test_action_mapper_identity_on_unit_box(self):
        from repro.frameworks.base import _action_mapper

        import repro.airdrop
        from repro.envs import make as make_env

        mapper = _action_mapper(make_env("Airdrop-v0"))
        assert np.allclose(mapper(np.array([0.37])), [0.37])

    def test_action_mapper_unbounded_passthrough(self):
        from repro.envs import Box, Env
        from repro.frameworks.base import _action_mapper

        class FreeEnv(Env):
            def __init__(self):
                self.observation_space = Box(-1, 1, shape=(1,))
                self.action_space = Box(-np.inf, np.inf, shape=(2,))

        mapper = _action_mapper(FreeEnv())
        assert np.allclose(mapper(np.array([0.5, -0.25])), [0.5, -0.25])
