"""Tests for evaluation metrics."""

from __future__ import annotations

import pytest

from repro.core import ComputationTime, Metric, MetricSet, PowerConsumption, Reward


class TestMetric:
    def test_direction_validation(self):
        with pytest.raises(ValueError):
            Metric(name="x", direction="up")
        with pytest.raises(ValueError):
            Metric(name="")

    def test_extract_by_name(self):
        m = Metric(name="latency", direction="min")
        assert m.extract({"latency": 3.0}) == 3.0

    def test_extract_by_custom_key(self):
        m = Metric(name="latency", direction="min", key="p99")
        assert m.extract({"p99": 9.0}) == 9.0

    def test_extract_missing_raises_with_available(self):
        m = Metric(name="x", direction="min")
        with pytest.raises(KeyError, match="available"):
            m.extract({"y": 1.0})

    def test_better(self):
        assert Metric(name="t", direction="min").better(1.0, 2.0)
        assert Metric(name="r", direction="max").better(2.0, 1.0)
        assert not Metric(name="t", direction="min").better(2.0, 1.0)

    def test_label(self):
        assert Metric(name="t", unit="s").label() == "t (s)"
        assert Metric(name="t").label() == "t"


class TestBuiltins:
    def test_paper_metric_directions(self):
        assert Reward().maximize
        assert not ComputationTime().maximize
        assert not PowerConsumption().maximize

    def test_paper_metric_names(self):
        assert Reward().name == "reward"
        assert ComputationTime().name == "computation_time"
        assert PowerConsumption().name == "power_consumption"


class TestMetricSet:
    def paper_set(self):
        return MetricSet([Reward(), ComputationTime(), PowerConsumption()])

    def test_lookup(self):
        ms = self.paper_set()
        assert ms["reward"].maximize
        assert "reward" in ms
        assert "bandwidth" not in ms
        with pytest.raises(KeyError):
            ms["bandwidth"]

    def test_order_preserved(self):
        ms = self.paper_set()
        assert ms.names == ["reward", "computation_time", "power_consumption"]
        assert ms.directions() == ["max", "min", "min"]

    def test_extract_all(self):
        ms = self.paper_set()
        raw = {"reward": -0.4, "computation_time": 100.0, "power_consumption": 5.0, "x": 1}
        assert ms.extract_all(raw) == {
            "reward": -0.4,
            "computation_time": 100.0,
            "power_consumption": 5.0,
        }

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MetricSet([])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            MetricSet([Reward(), Reward()])
