#!/usr/bin/env python3
"""Environment-parameter study: wind and gusts (§IV-B knobs).

The paper disables wind for its campaign (§V-a) but exposes wind
activation, gust activation and the gust probability as environment
parameters. This example runs the methodology over exactly those knobs,
showing how the learning difficulty — and therefore the Reward metric —
responds while computation cost stays flat.

    python examples/wind_ablation.py
"""

from __future__ import annotations

import repro.airdrop  # noqa: F401
from repro.core import (
    Boolean,
    Campaign,
    Categorical,
    GridSearch,
    ParameterSpace,
    ParetoFrontRanking,
    SortedTableRanking,
)
from repro.paper import AirdropCaseStudy, Scale, paper_metrics


class WindyCaseStudy(AirdropCaseStudy):
    """Routes the environment knobs of each configuration into the env."""

    def make_spec(self, config, seed):
        spec = super().make_spec(config, seed)
        env_kwargs = dict(spec.env_kwargs)
        env_kwargs.update(
            wind=bool(config["wind"]),
            gusts=bool(config["gusts"]),
            gust_probability=float(config["gust_probability"]),
        )
        # fixed algorithm/system half: stable/ppo/1n/4c at RK5
        return spec.__class__(
            algorithm="ppo",
            n_nodes=1,
            cores_per_node=4,
            seed=seed,
            env_kwargs=env_kwargs,
            total_steps=spec.total_steps,
            paper_steps=spec.paper_steps,
        )


def main() -> None:
    space = ParameterSpace(
        parameters=[
            Boolean("wind", kind="environment"),
            Boolean("gusts", kind="environment"),
            Categorical("gust_probability", [0.02, 0.1], kind="environment"),
            # placeholder algorithmic/system axes so the space mirrors the
            # paper's classification; held fixed by the case study above
            Categorical("rk_order", [5], kind="environment"),
            Categorical("framework", ["stable"], kind="algorithm"),
            Categorical("algorithm", ["ppo"], kind="algorithm"),
            Categorical("n_nodes", [1], kind="system"),
            Categorical("cores_per_node", [4], kind="system"),
        ],
        constraints=[lambda v: v["gusts"] or v["gust_probability"] == 0.02],
    )
    campaign = Campaign(
        WindyCaseStudy(scale=Scale(real_steps=8000)),
        space,
        GridSearch(space),
        paper_metrics(),
        rankers=[
            SortedTableRanking("reward"),
            ParetoFrontRanking(["reward", "computation_time"], name="reward-vs-time"),
        ],
    )
    report = campaign.run(
        progress=lambda trial, n: print(
            f"  [{n}] wind={trial.config['wind']} gusts={trial.config['gusts']} "
            f"p={trial.config['gust_probability']}: reward "
            f"{trial.objectives.get('reward', float('nan')):.3f}"
        )
    )
    print()
    print(report.render(plots=False))
    calm = [t for t in report.table.completed() if not t.config["wind"]]
    windy = [t for t in report.table.completed() if t.config["wind"]]
    if calm and windy:
        calm_best = max(t.objectives["reward"] for t in calm)
        windy_best = max(t.objectives["reward"] for t in windy)
        print(f"\nbest reward calm: {calm_best:.3f}   best reward windy: {windy_best:.3f}")
        print("(wind and gusts make the precision-landing task measurably harder)")


if __name__ == "__main__":
    main()
