#!/usr/bin/env python3
"""The §III-C implementation alternative: an Optuna-style study.

Tunes PPO hyperparameters (learning rate, clip range, epochs) for the
airdrop task with the built-in TPE sampler and median pruning — the
"hyperparameter optimization framework" route the paper sketches as an
alternative implementation of the methodology.

    python examples/hpo_study.py               # ~2 min
    python examples/hpo_study.py --trials 20
"""

from __future__ import annotations

import argparse

import numpy as np

import repro.airdrop  # noqa: F401
from repro.core import MedianPruner, Study, TrialPruned
from repro.frameworks import TrainSpec, get_framework
from repro.rl import PPOConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=12)
    parser.add_argument("--steps", type=int, default=4000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    def objective(trial) -> float:
        lr = trial.suggest_float("learning_rate", 1e-5, 1e-2, log=True)
        clip = trial.suggest_float("clip_range", 0.05, 0.4)
        epochs = trial.suggest_int("n_epochs", 3, 15)

        framework = get_framework("stable")
        spec = TrainSpec(
            algorithm="ppo",
            n_nodes=1,
            cores_per_node=4,
            seed=args.seed,
            env_kwargs={"rk_order": 5},
            total_steps=args.steps,
            ppo=PPOConfig(learning_rate=lr, clip_range=clip, n_epochs=epochs),
        )

        pruned = {"flag": False}

        def callback(steps: int, reward: float) -> bool:
            trial.report(reward, steps)
            if trial.should_prune(steps):
                pruned["flag"] = True
                return True
            return False

        result = framework.train(spec, callback=callback)
        if pruned["flag"]:
            raise TrialPruned
        return result.reward  # maximize landing score

    study = Study(
        direction="maximize",
        sampler="tpe",
        seed=args.seed,
        pruner=MedianPruner(n_startup_trials=3, n_warmup_steps=args.steps // 4),
    )
    study.optimize(objective, n_trials=args.trials)

    print(f"\n{len(study.trials)} trials "
          f"({sum(t.state == 'pruned' for t in study.trials)} pruned, "
          f"{sum(t.state == 'failed' for t in study.trials)} failed)")
    for t in study.trials:
        value = "--" if t.value is None else f"{t.value:7.3f}"
        print(f"  trial {t.number:2d} [{t.state:8s}] reward {value}  {t.params}")
    best = study.best_trial
    print(f"\nbest: reward {best.value:.3f} with {best.params}")


if __name__ == "__main__":
    main()
