#!/usr/bin/env python3
"""Full reproduction of the paper's experimental campaign (§V–VI).

Replays the 18 Table-I configurations on the simulated two-node testbed,
prints the regenerated Table I, the three Pareto fronts (Figures 4–6) as
ASCII scatter plots, and the overlap with the fronts the paper highlights.

    python examples/airdrop_campaign.py                 # scaled (~9 min)
    python examples/airdrop_campaign.py --steps 4000    # quick look (~2 min)
    python examples/airdrop_campaign.py --steps 200000  # the paper's budget
    python examples/airdrop_campaign.py --explorer random --trials 18
"""

from __future__ import annotations

import argparse
import time

import repro.airdrop  # noqa: F401
from repro.core import RandomSearch
from repro.paper import (
    Scale,
    Table1Explorer,
    airdrop_parameter_space,
    compare_all,
    table1_campaign,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=20_000,
                        help="real training steps per configuration (default 20000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--explorer", choices=["table1", "random"], default="table1",
        help="replay the paper's 18 rows, or draw fresh Random Search samples",
    )
    parser.add_argument("--trials", type=int, default=18,
                        help="trial count for --explorer random")
    args = parser.parse_args()

    space = airdrop_parameter_space()
    explorer = (
        Table1Explorer(space)
        if args.explorer == "table1"
        else RandomSearch(space, n_trials=args.trials, seed=args.seed)
    )
    campaign = table1_campaign(
        seed=args.seed, scale=Scale(real_steps=args.steps), explorer=explorer
    )

    t0 = time.time()

    def progress(trial, n):
        objs = trial.objectives
        if trial.ok:
            print(
                f"  [{n:2d}] {trial.config.describe():90s} "
                f"reward {objs['reward']:7.3f}  "
                f"time {objs['computation_time'] / 60:6.1f} min  "
                f"energy {objs['power_consumption']:6.0f} kJ   "
                f"({time.time() - t0:5.0f} s host)"
            )
        else:
            print(f"  [{n:2d}] {trial.config.describe():90s} {trial.status.upper()}")

    print(f"running {args.explorer} campaign, {args.steps} real steps per trial...")
    report = campaign.run(progress=progress)

    print()
    print(report.render())
    print()
    if args.explorer == "table1":
        print("overlap with the paper's highlighted fronts:")
        for comparison in compare_all(report):
            print(" ", comparison.describe())


if __name__ == "__main__":
    main()
