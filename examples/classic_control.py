#!/usr/bin/env python3
"""The RL substrate on classic-control tasks (beyond the airdrop study).

Trains the from-scratch discrete PPO on CartPole and the framework layer's
continuous PPO on Pendulum — the §III-B-a point that the methodology's
case-study slot accepts any gym-style environment.

    python examples/classic_control.py            # ~60 s
"""

from __future__ import annotations

import numpy as np

import repro.classic  # noqa: F401  (registers CartPole-v0 / Pendulum-v0)
from repro.envs import SyncVectorEnv, make
from repro.frameworks import TrainSpec, get_framework
from repro.rl import CategoricalPPOAgent, PPOConfig


def train_cartpole(total_steps: int = 25_000) -> None:
    print("=== CartPole (discrete PPO, hand-rolled) ===")
    n_envs = 8
    venv = SyncVectorEnv([lambda: make("CartPole-v0") for _ in range(n_envs)])
    agent = CategoricalPPOAgent(4, 2, PPOConfig(ent_coef=0.01), seed=0)
    buf = agent.make_buffer(128, n_envs)
    obs, _ = venv.reset(seed=0)
    steps = 0
    while steps < total_steps:
        buf.reset()
        for _ in range(128):
            out = agent.act(obs)
            nobs, rew, term, trunc, infos = venv.step(out["action"])
            boot = np.zeros(n_envs)
            for i, info in enumerate(infos):
                if trunc[i] and not term[i] and "final_observation" in info:
                    boot[i] = agent.value(info["final_observation"][None])[0]
            buf.add(
                obs, out["action"].reshape(-1, 1).astype(float), out["log_prob"],
                rew, out["value"], term, trunc, boot,
            )
            obs = nobs
            steps += n_envs
        buf.finish(agent.value(obs))
        agent.update(buf)
        print(f"  steps {steps:6d}: mean episode length "
              f"{venv.stats.recent_mean_return():6.1f}")


def train_pendulum(total_steps: int = 16_000) -> None:
    print("\n=== Pendulum (continuous PPO through the framework layer) ===")
    framework = get_framework("stable")
    spec = TrainSpec(
        algorithm="ppo",
        n_nodes=1,
        cores_per_node=4,
        seed=0,
        env_id="Pendulum-v0",
        env_kwargs={"rk_order": 5},
        total_steps=total_steps,
        eval_episodes=10,
    )
    result = framework.train(
        spec,
        callback=lambda steps, reward: print(
            f"  steps {steps:6d}: recent return {reward:8.1f}"
        ) or False,
    )
    print(f"  final training return {result.reward:.1f}, "
          f"deterministic eval {result.eval_reward:.1f}")
    print(f"  (virtual time on the testbed: {result.computation_time_min:.1f} min, "
          f"energy {result.energy_kj:.0f} kJ)")


if __name__ == "__main__":
    train_cartpole()
    train_pendulum()
