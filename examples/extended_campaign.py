#!/usr/bin/env python3
"""Extended campaign: a fourth framework and two extra decision metrics.

Goes beyond the paper's §V study in two ways the library supports:

* the IMPALA-like asynchronous back-end (§II-A background) joins the
  framework axis;
* two additional evaluation metrics: bandwidth usage over the
  interconnect, and time-to-threshold (how quickly the learning curve
  first reaches a usable reward) — both §III-B-d style extensions.

    python examples/extended_campaign.py            # ~3 min
    python examples/extended_campaign.py --steps 20000
"""

from __future__ import annotations

import argparse

import repro.airdrop  # noqa: F401
from repro.core import (
    BandwidthUsage,
    Campaign,
    Categorical,
    ComputationTime,
    MetricSet,
    ParameterSpace,
    ParetoFrontRanking,
    RandomSearch,
    Reward,
    TimeToThreshold,
    parameter_importance,
)
from repro.paper import AirdropCaseStudy, Scale


def extended_space() -> ParameterSpace:
    return ParameterSpace(
        parameters=[
            Categorical("rk_order", [3, 5, 8], kind="environment"),
            Categorical(
                "framework", ["rllib", "stable", "tfagents", "impala"], kind="algorithm"
            ),
            Categorical("algorithm", ["ppo"], kind="algorithm"),
            Categorical("n_nodes", [1, 2], kind="system"),
            Categorical("cores_per_node", [2, 4], kind="system"),
        ],
        constraints=[
            lambda v: v["n_nodes"] == 1 or v["framework"] in ("rllib", "impala"),
        ],
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=8000)
    parser.add_argument("--trials", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    space = extended_space()
    metrics = MetricSet(
        [Reward(), ComputationTime(), TimeToThreshold(), BandwidthUsage()]
    )
    campaign = Campaign(
        AirdropCaseStudy(scale=Scale(real_steps=args.steps)),
        space,
        RandomSearch(space, n_trials=args.trials, seed=args.seed),
        metrics,
        rankers=[
            ParetoFrontRanking(["reward", "computation_time"], name="reward-vs-time"),
            ParetoFrontRanking(["reward", "time_to_threshold"], name="reward-vs-convergence"),
            ParetoFrontRanking(["computation_time", "bandwidth_usage"], name="time-vs-bandwidth"),
        ],
    )
    report = campaign.run(
        progress=lambda trial, n: print(f"  [{n:2d}] {trial.config.describe()} {trial.status}")
    )
    print()
    print(report.render(plots=False))
    print()
    print("fronts:", report.fronts())
    print("\nwhich parameter drives each metric (variance share):")
    for metric in metrics.names:
        shares = parameter_importance(report.table, metric)
        top = max(shares, key=shares.get)
        print(f"  {metric:20s}: {top} ({shares[top]:.0%})")


if __name__ == "__main__":
    main()
