#!/usr/bin/env python3
"""Quickstart: the methodology in ~40 lines.

Builds a small decision-analysis campaign over the airdrop case study —
three learning configurations, the paper's three metrics, Pareto-front
ranking — and prints the resulting decision report.

Run time: ~20 s (heavily scaled-down training budgets).

    python examples/quickstart.py
"""

from __future__ import annotations

import repro.airdrop  # noqa: F401  (registers the Airdrop-v0 environment)
from repro.core import Campaign, RandomSearch
from repro.paper import (
    AirdropCaseStudy,
    Scale,
    airdrop_parameter_space,
    paper_metrics,
    paper_rankers,
)


def main() -> None:
    # 1. the case study: the airdrop package delivery simulator,
    #    wind disabled, 30-1000 unit drop altitude (the paper's §V-a setup)
    case_study = AirdropCaseStudy(scale=Scale(real_steps=4000))

    # 2. learning configurations: RK order x framework x algorithm x nodes
    #    x cores, with multi-node restricted to the RLlib-like back-end
    space = airdrop_parameter_space()

    # 3. exploratory method: the paper's Random Search
    explorer = RandomSearch(space, n_trials=6, seed=7)

    # 4. evaluation metrics: Reward, Computation Time, Power Consumption
    metrics = paper_metrics()

    # 5. ranking method: the three Pareto fronts of Figures 4-6
    campaign = Campaign(case_study, space, explorer, metrics, rankers=paper_rankers())

    report = campaign.run(
        progress=lambda trial, n: print(f"  finished trial {n}: {trial.describe(metrics)}")
    )
    print()
    print(report.render(max_rows=6))
    print()
    for name, ids in report.fronts().items():
        print(f"{name}: non-dominated solutions {ids}")


if __name__ == "__main__":
    main()
