#!/usr/bin/env python3
"""Applying the methodology to a *different* case study (§VII generality).

The paper claims the methodology "is applicable to any other use case for
optimizing algorithmic- and system-parameters". This example demonstrates
it on a non-RL problem: choosing a matrix-multiplication configuration
(blocking factor, parallel workers, precision) for the simulated two-node
testbed, trading accuracy against computation time and energy.

No RL, no airdrop — only the methodology core plus the cluster simulator.

    python examples/custom_case_study.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster import ClusterSimulator, CPUPowerModel, energy_from_trace, paper_testbed
from repro.core import (
    Campaign,
    Categorical,
    Configuration,
    GridSearch,
    Integer,
    Metric,
    MetricSet,
    ParameterSpace,
    ParetoFrontRanking,
)


class MatmulCaseStudy:
    """Tiled matrix multiply on the simulated cluster.

    * a real (small) numpy computation measures numerical error of the
      reduced-precision path against float64;
    * the cluster simulator charges virtual time for the full-size
      problem: work is split into tiles scheduled over the workers, with
      per-tile costs depending on the blocking factor and precision.
    """

    N = 4096              # virtual problem size
    TILE_FLOP_S = 2.2e-10  # virtual seconds per flop at float64

    def evaluate(self, config: Configuration, seed: int, progress=None) -> dict[str, float]:
        block = int(config["block"])
        workers = int(config["workers"])
        precision = str(config["precision"])

        # ---- real accuracy measurement on a scaled-down instance
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((256, 256))
        b = rng.standard_normal((256, 256))
        exact = a @ b
        if precision == "float32":
            approx = (a.astype(np.float32) @ b.astype(np.float32)).astype(np.float64)
        else:
            approx = exact
        error = float(np.abs(approx - exact).max())

        # ---- virtual execution of the full-size problem
        spec = paper_testbed(2)
        sim = ClusterSimulator(spec)
        n_tiles = (self.N // block) ** 2
        flops_per_tile = 2.0 * block * block * self.N
        speed = 2.0 if precision == "float32" else 1.0
        # small blocks pay proportionally more scheduling overhead
        tile_s = flops_per_tile * self.TILE_FLOP_S / speed + 5e-4
        for i in range(n_tiles):
            node = (i % workers) // spec.nodes[0].n_cores
            sim.task(f"tile{i}", min(node, spec.n_nodes - 1), duration=tile_s, cores=1)
        trace = sim.run()
        nodes_used = list(range(min(2, (workers + 3) // 4)))
        energy = energy_from_trace(trace, spec, CPUPowerModel(), nodes_allocated=nodes_used)

        return {
            "numerical_error": error,
            "computation_time": trace.makespan,
            "power_consumption": energy.total_kilojoules,
        }


def main() -> None:
    space = ParameterSpace(
        [
            Categorical("block", [128, 256, 512], kind="algorithm"),
            Integer("workers", 2, 8, kind="system"),
            Categorical("precision", ["float32", "float64"], kind="algorithm"),
        ]
    )
    metrics = MetricSet(
        [
            Metric(name="numerical_error", direction="min", unit="max abs"),
            Metric(name="computation_time", direction="min", unit="s"),
            Metric(name="power_consumption", direction="min", unit="kJ"),
        ]
    )
    campaign = Campaign(
        MatmulCaseStudy(),
        space,
        GridSearch(space),
        metrics,
        rankers=[
            ParetoFrontRanking(["numerical_error", "computation_time"], name="err-vs-time"),
            ParetoFrontRanking(["power_consumption", "computation_time"], name="power-vs-time"),
        ],
    )
    report = campaign.run()
    print(report.render(max_rows=8))
    print()
    for name, ids in report.fronts().items():
        print(f"{name}: non-dominated configurations {ids}")


if __name__ == "__main__":
    main()
