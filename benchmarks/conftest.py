"""Shared fixtures for the benchmark harness.

The expensive part — actually running the paper's 18-configuration
campaign — happens once per session in :func:`table1_report`; the
table/figure benches then regenerate their artefacts from it.

Environment knobs:

* ``REPRO_BENCH_STEPS`` — real env steps per training run (default 20000,
  the calibrated scaled budget; the paper's full 200000 is available with
  ``REPRO_BENCH_STEPS=200000`` at ~10x the wall time).
* ``REPRO_BENCH_SEED``  — campaign seed (default 0).
"""

from __future__ import annotations

import os

import pytest

import repro.airdrop  # noqa: F401  (registers Airdrop-v0)
from repro.paper import Scale, table1_campaign

BENCH_STEPS = int(os.environ.get("REPRO_BENCH_STEPS", "20000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def bench_scale() -> Scale:
    return Scale(real_steps=BENCH_STEPS)


@pytest.fixture(scope="session")
def table1_report(bench_scale):
    """The full §V campaign, run once for the whole benchmark session."""
    campaign = table1_campaign(seed=BENCH_SEED, scale=bench_scale)
    report = campaign.run()
    return report


def once(benchmark, fn, *args, **kwargs):
    """Run a heavyweight callable exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
                              warmup_rounds=0)


@pytest.fixture
def rng():
    import numpy as np

    return np.random.default_rng(12345)
