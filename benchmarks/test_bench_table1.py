"""Bench: regenerate Table I (configuration settings and results).

The paper's Table I lists, for each of the 18 sampled configurations, the
Reward, Computation Time and Power Consumption measured over a 200k-step
learning run. This bench re-renders the table from the session campaign
and asserts its structural shape against the paper:

* the three SAC-poor findings of §VI-D (slow, power-hungry, low reward);
* the RK-order cost ordering within otherwise-identical rows;
* the calibrated timing anchors within a tolerance band.
"""

from __future__ import annotations

import numpy as np

from repro.core import render_table
from repro.paper import PAPER_ANCHORS

from .conftest import once


def test_bench_table1(benchmark, table1_report):
    text = once(benchmark, lambda: render_table(table1_report.table, title="Table I"))
    print("\n" + text)

    trials = {t.trial_id: t for t in table1_report.table.completed()}
    assert len(trials) == 18

    ppo = [t for t in trials.values() if t.config["algorithm"] == "ppo"]
    sac = [t for t in trials.values() if t.config["algorithm"] == "sac"]

    # §VI-D: SAC was "inefficient... taking too much time for computation
    # and consuming too much power, or failing in learning tasks"
    mean = lambda ts, key: float(np.mean([t.objectives[key] for t in ts]))
    assert mean(sac, "computation_time") > 2.0 * mean(ppo, "computation_time")
    assert mean(sac, "power_consumption") > 1.5 * mean(ppo, "power_consumption")
    assert mean(sac, "reward") < mean(ppo, "reward") - 0.5

    # §IV-B: lower RK order → lower computation time (same config otherwise)
    # sols 7 (RK8 1n4c) vs a hypothetical RK3 twin don't exist in the table;
    # use 2 (RK3) vs 5 (RK5) vs 8 (RK8): identical rllib/ppo/2n/4c rows.
    t2 = trials[2].objectives["computation_time"]
    t5 = trials[5].objectives["computation_time"]
    t8 = trials[8].objectives["computation_time"]
    assert t2 < t5 < t8

    # calibrated anchors: computation time within 15% of the paper
    for solution, (_, _, _, _, minutes, kj) in PAPER_ANCHORS.items():
        measured_min = trials[solution].objectives["computation_time"] / 60.0
        assert abs(measured_min - minutes) / minutes < 0.15, (
            f"solution {solution}: {measured_min:.1f} min vs paper {minutes} min"
        )
        if kj is not None:
            measured_kj = trials[solution].objectives["power_consumption"]
            assert abs(measured_kj - kj) / kj < 0.15, (
                f"solution {solution}: {measured_kj:.0f} kJ vs paper {kj} kJ"
            )


def test_bench_table1_csv_export(benchmark, table1_report):
    csv_text = benchmark(table1_report.table.to_csv)
    assert len(csv_text.strip().splitlines()) == 19
