"""Ablation bench: CPU cores per node (§VI-D, solutions 10 vs 11).

"Using all the available CPU cores speeds-up the training and seems to
decrease the power consumption... while at the same time preserving the
accuracy of the landing."
"""

from __future__ import annotations

import numpy as np

import repro.airdrop  # noqa: F401
from repro.frameworks import TrainSpec, get_framework

from .conftest import BENCH_STEPS, once


def _train(cores: int, seed: int, steps: int):
    fw = get_framework("tfagents")
    spec = TrainSpec(
        algorithm="ppo",
        n_nodes=1,
        cores_per_node=cores,
        seed=seed,
        env_kwargs={"rk_order": 3},
        total_steps=steps,
    )
    return fw.train(spec)


def test_bench_cores_ablation(benchmark):
    steps = BENCH_STEPS
    seeds = (0, 1, 2)

    def sweep():
        rows = {}
        for cores in (2, 4):
            results = [_train(cores, seed, steps) for seed in seeds]
            rows[cores] = {
                "time_min": float(np.mean([r.computation_time_min for r in results])),
                "energy_kj": float(np.mean([r.energy_kj for r in results])),
                "reward": float(np.mean([r.reward for r in results])),
            }
        return rows

    rows = once(benchmark, sweep)
    print("\ncore-count ablation (tfagents/ppo/rk3/1n, solutions 10 vs 11):")
    for cores, row in rows.items():
        print(
            f"  {cores} cores: time {row['time_min']:6.1f} min  "
            f"energy {row['energy_kj']:6.1f} kJ  reward {row['reward']:7.3f}"
        )

    # 4 cores speed up training...
    assert rows[4]["time_min"] < rows[2]["time_min"] * 0.7
    # ...and decrease total energy (shorter run beats the higher draw)
    assert rows[4]["energy_kj"] < rows[2]["energy_kj"]
    # ...while preserving accuracy (no large reward regression; the
    # residual gap at the scaled budget is seed noise)
    assert rows[4]["reward"] > rows[2]["reward"] - 0.6
