"""Extension bench: the IMPALA architecture vs the paper's RLlib setup.

The paper's §II-A background names IMPALA as the scalable alternative to
synchronous actor-learner designs. This bench quantifies what that
architecture would have contributed to Table I: at the same 2-node
configuration, the asynchronous V-trace pipeline trades further reward
(deeper off-policy lag) for substantially better computation time and
energy — extending the paper's solutions-7-vs-8 trade-off axis.
"""

from __future__ import annotations

import numpy as np

import repro.airdrop  # noqa: F401
from repro.frameworks import TrainSpec, get_framework

from .conftest import BENCH_STEPS, once


def test_bench_impala_vs_rllib(benchmark):
    steps = BENCH_STEPS
    seeds = (0, 1)

    def compare():
        rows = {}
        for name in ("rllib", "impala"):
            results = []
            for seed in seeds:
                fw = get_framework(name)
                spec = TrainSpec(
                    algorithm="ppo", n_nodes=2, cores_per_node=4, seed=seed,
                    env_kwargs={"rk_order": 5}, total_steps=steps,
                )
                results.append(fw.train(spec))
            rows[name] = {
                "time_min": float(np.mean([r.computation_time_min for r in results])),
                "energy_kj": float(np.mean([r.energy_kj for r in results])),
                "reward": float(np.mean([r.reward for r in results])),
            }
        return rows

    rows = once(benchmark, compare)
    print("\nsynchronous (rllib) vs asynchronous V-trace (impala), 2n x 4c, rk5:")
    for name, row in rows.items():
        print(
            f"  {name:6s}: time {row['time_min']:6.1f} min  "
            f"energy {row['energy_kj']:6.1f} kJ  reward {row['reward']:7.3f}"
        )

    # the async pipeline is decisively faster and cheaper...
    assert rows["impala"]["time_min"] < rows["rllib"]["time_min"] * 0.8
    assert rows["impala"]["energy_kj"] < rows["rllib"]["energy_kj"]
    # ...and learning stays in the same ballpark as the synchronous design
    assert rows["impala"]["reward"] > rows["rllib"]["reward"] - 1.0


def test_bench_impala_scaling(benchmark):
    """IMPALA's pipelining keeps scaling where the synchronous design
    saturates: the 2-node speed-up must exceed RLlib's."""
    steps = max(4000, BENCH_STEPS // 2)

    def speedup(name):
        times = {}
        for nodes in (1, 2):
            fw = get_framework(name)
            spec = TrainSpec(
                algorithm="ppo", n_nodes=nodes, cores_per_node=4, seed=0,
                env_kwargs={"rk_order": 5}, total_steps=steps,
            )
            times[nodes] = fw.train(spec).computation_time_s
        return times[1] / times[2]

    result = once(benchmark, lambda: {"rllib": speedup("rllib"), "impala": speedup("impala")})
    print(f"\n2-node speed-up: rllib {result['rllib']:.2f}x, impala {result['impala']:.2f}x")
    assert result["impala"] > result["rllib"]
