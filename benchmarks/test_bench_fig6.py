"""Bench: regenerate Figure 6 — Reward vs Power Consumption Pareto front.

Paper findings reproduced (§VI-C):

* solution 11 anchors the low-power end of the front;
* the high-reward end is a Stable-Baselines PPO solution (paper: 16, with
  14 adjacent) — single-node, RK-order-8 territory;
* SAC solutions never appear on the front.
"""

from __future__ import annotations

from repro.core import render_scatter
from repro.paper import compare_front, figure_front

from .conftest import once


def test_bench_fig6(benchmark, table1_report):
    front = once(benchmark, figure_front, table1_report, "fig6")

    table = table1_report.table
    mx = table.metrics["power_consumption"]
    my = table.metrics["reward"]
    print("\n" + render_scatter(
        table.completed(), mx, my, front_ids=front,
        title="Figure 6: Reward vs Power Consumption",
    ))
    comparison = compare_front(table1_report, "fig6")
    print(comparison.describe())

    trials = {t.trial_id: t for t in table.completed()}

    # low-power anchor
    assert 11 in front

    # high-reward anchor is Stable Baselines PPO
    best = max(trials.values(), key=lambda t: t.objectives["reward"])
    assert best.config["framework"] == "stable"
    assert best.trial_id in front

    # no SAC on the front
    for trial_id in front:
        assert trials[trial_id].config["algorithm"] == "ppo"

    # all front members are single-node (distribution costs energy)
    for trial_id in front:
        assert trials[trial_id].config["n_nodes"] == 1

    assert comparison.recall >= 0.5, comparison.describe()
