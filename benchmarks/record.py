"""Benchmark recorder and regression gate for the CI performance budget.

``record`` mode runs a fixed set of named workloads (the Table I
campaign single-env, vectorized at ``n_envs=8``, and on the process
executor), takes the **min of k** wall-clock times per workload (minimum
is the standard low-noise estimator for CI runners) and writes a
schema'd ``BENCH_<sha>.json`` next to this file::

    PYTHONPATH=src python benchmarks/record.py --rounds 3

``compare`` mode gates a candidate recording against a committed
baseline and exits non-zero on a >``--threshold`` regression::

    PYTHONPATH=src python benchmarks/record.py \
        --compare benchmarks/BENCH_baseline.json BENCH_abc123.json

Each workload also records the campaign's table fingerprint, so a
recording doubles as a correctness witness: two recordings at the same
steps/seed on the same code must agree fingerprint-for-fingerprint, and
``table1_serial`` vs ``table1_vec8`` wall times back the repo's claimed
vectorization speedup (asserted ``>= --min-speedup`` at record time).

``--append-history FILE`` additionally appends one compact JSONL line
per successful recording (timestamp, sha, per-workload min + fingerprint
digest, derived speedup) — the across-commits performance trajectory CI
persists, where per-sha ``BENCH_<sha>.json`` artifacts individually
expire.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from typing import Any, Callable

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

SCHEMA_VERSION = 1
DEFAULT_STEPS = 800
DEFAULT_ROUNDS = 3
DEFAULT_THRESHOLD = 0.15

#: workloads newer than some committed baselines: absent on either side
#: of a comparison they are informational, never a gate failure
OPTIONAL_WORKLOADS = frozenset({"table1_loopback2"})


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _calibration() -> str:
    """Fixed CPU workload used to normalize timings across machines.

    Compare mode divides every candidate/baseline ratio by the
    calibration ratio, so a recording from a slower CI runner is not
    flagged as a regression merely for running on slower hardware.
    """
    import numpy as np

    rng = np.random.default_rng(0)
    a = rng.standard_normal((384, 384))
    for _ in range(60):
        a = np.tanh(a @ a.T / 384.0)
    return f"{float(a.sum()):.6e}"


def _workloads(steps: int, seed: int) -> dict[str, Callable[[], Any]]:
    from repro.core.serialization import table_fingerprint
    from repro.paper import Scale, table1_campaign

    def campaign(**kwargs):
        def run():
            report = table1_campaign(
                seed=seed, scale=Scale(real_steps=steps), **kwargs
            ).run()
            assert all(t.ok for t in report.table), "benchmark campaign had failures"
            return table_fingerprint(report.table)

        return run

    def loopback2() -> str:
        """Coordinator + 2 local worker processes over 127.0.0.1.

        Times the full distributed path — worker spawn, handshake, task
        frames, outcome streaming — so regressions in the repro.net
        stack show up as wall time even when results stay identical.
        """
        from repro.net import RemoteExecutor

        executor = RemoteExecutor(max_workers=2, heartbeat_timeout=30.0)
        host, port = executor.address
        src = os.path.abspath(
            os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        workers = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", f"{host}:{port}", "--no-cache"],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            for _ in range(2)
        ]
        try:
            executor.wait_for_workers(2, timeout=60.0)
            report = table1_campaign(
                seed=seed, scale=Scale(real_steps=steps), n_envs=8,
                executor=executor,
            ).run()
            assert all(t.ok for t in report.table), "loopback campaign had failures"
            return table_fingerprint(report.table)
        finally:
            executor.shutdown()
            for proc in workers:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10.0)

    return {
        "calibration": _calibration,
        "table1_serial": campaign(),
        "table1_vec8": campaign(n_envs=8),
        "table1_process_vec8": campaign(
            n_envs=8, executor="process", max_workers=4
        ),
        "table1_loopback2": loopback2,
    }


def record(args: argparse.Namespace) -> int:
    import hashlib

    sha = _git_sha()
    results: dict[str, dict[str, Any]] = {}
    for name, run in _workloads(args.steps, args.seed).items():
        times: list[float] = []
        fingerprints: set[str] = set()
        for round_index in range(args.rounds):
            start = time.perf_counter()
            fingerprint = run()
            times.append(time.perf_counter() - start)
            fingerprints.add(
                hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()[:16]
            )
            print(f"  {name} round {round_index + 1}/{args.rounds}: "
                  f"{times[-1]:.3f}s", flush=True)
        if len(fingerprints) != 1:
            print(f"FAIL: {name} is not run-to-run deterministic: {fingerprints}",
                  file=sys.stderr)
            return 1
        results[name] = {
            "min_s": min(times),
            "times_s": [round(t, 6) for t in times],
            "fingerprint_sha": fingerprints.pop(),
        }

    speedup = results["table1_serial"]["min_s"] / results["table1_vec8"]["min_s"]
    payload = {
        "format_version": SCHEMA_VERSION,
        "sha": sha,
        "steps": args.steps,
        "seed": args.seed,
        "rounds": args.rounds,
        "workloads": results,
        "derived": {"vec8_speedup": round(speedup, 4)},
    }
    output = args.output or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), f"BENCH_{sha}.json"
    )
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {output}")
    print(f"n_envs=8 speedup over single-env: {speedup:.2f}x "
          f"(floor {args.min_speedup:.1f}x)")
    if speedup < args.min_speedup:
        print(f"FAIL: vectorized speedup {speedup:.2f}x is below the "
              f"{args.min_speedup:.1f}x floor", file=sys.stderr)
        return 1
    if args.append_history:
        append_history(args.append_history, payload)
        print(f"appended history line to {args.append_history}")
    return 0


def append_history(path: str, payload: dict[str, Any]) -> None:
    """Append one compact trajectory line for a successful recording.

    The line keeps only what a trend plot or bisection needs — min wall
    time and fingerprint digest per workload — so years of history stay
    a few kilobytes. Appended after the gate checks pass, so the history
    never contains recordings that failed determinism or the speedup
    floor.
    """
    line = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "sha": payload["sha"],
        "steps": payload["steps"],
        "seed": payload["seed"],
        "rounds": payload["rounds"],
        "workloads": {
            name: {
                "min_s": entry["min_s"],
                "fingerprint_sha": entry["fingerprint_sha"],
            }
            for name, entry in sorted(payload["workloads"].items())
        },
        "vec8_speedup": payload["derived"]["vec8_speedup"],
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(line, sort_keys=True))
        handle.write("\n")


def _load(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format_version") != SCHEMA_VERSION:
        raise SystemExit(f"{path}: unsupported format_version "
                         f"{payload.get('format_version')!r}")
    return payload


def compare(args: argparse.Namespace) -> int:
    baseline_path, candidate_path = args.compare
    baseline, candidate = _load(baseline_path), _load(candidate_path)
    for field in ("steps", "seed", "rounds"):
        if baseline.get(field) != candidate.get(field):
            print(f"FAIL: recordings are not comparable — {field} differs "
                  f"({baseline.get(field)} vs {candidate.get(field)})",
                  file=sys.stderr)
            return 1
    failures = []
    base_work = dict(baseline["workloads"])
    cand_work = dict(candidate["workloads"])
    scale = 1.0
    base_cal, cand_cal = base_work.pop("calibration", None), cand_work.pop(
        "calibration", None
    )
    if base_cal and cand_cal:
        scale = cand_cal["min_s"] / base_cal["min_s"]
        print(f"machine-speed calibration: candidate runs at {scale:.2f}x "
              f"baseline wall time; ratios are normalized by it")
    print(f"{'workload':<22} {'baseline':>10} {'candidate':>10} {'delta':>8}")
    for name, base in sorted(base_work.items()):
        cand = cand_work.get(name)
        if cand is None:
            if name in OPTIONAL_WORKLOADS:
                print(f"{name:<22} {'(optional: missing from candidate)':>30}")
                continue
            failures.append(f"{name}: missing from candidate")
            continue
        ratio = cand["min_s"] / base["min_s"] / scale - 1.0
        flag = "  REGRESSION" if ratio > args.threshold else ""
        print(f"{name:<22} {base['min_s']:>9.3f}s {cand['min_s']:>9.3f}s "
              f"{ratio:>+7.1%}{flag}")
        if ratio > args.threshold:
            failures.append(f"{name}: {ratio:+.1%} slower "
                            f"(threshold {args.threshold:.0%})")
    for name in sorted(set(cand_work) - set(base_work)):
        print(f"{name:<22} {'(not in baseline: informational only)':>30} "
              f"{cand_work[name]['min_s']:>9.3f}s")
    base_speed = baseline["derived"]["vec8_speedup"]
    cand_speed = candidate["derived"]["vec8_speedup"]
    print(f"{'vec8_speedup':<22} {base_speed:>9.2f}x {cand_speed:>9.2f}x")
    if cand_speed < args.min_speedup:
        failures.append(f"vec8_speedup fell to {cand_speed:.2f}x "
                        f"(floor {args.min_speedup:.1f}x)")
    if failures:
        print("\nbenchmark gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark gate passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=DEFAULT_STEPS,
                        help="real env steps per trial (must match to compare)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS,
                        help="wall-time samples per workload (min is kept)")
    parser.add_argument("--output", type=str, default=None,
                        help="recording path (default benchmarks/BENCH_<sha>.json)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required table1 speedup at n_envs=8")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="max tolerated per-workload slowdown in compare mode")
    parser.add_argument("--compare", nargs=2, metavar=("BASELINE", "CANDIDATE"),
                        default=None, help="gate CANDIDATE against BASELINE")
    parser.add_argument("--append-history", type=str, default=None,
                        metavar="FILE",
                        help="after a successful record, append one compact "
                        "JSONL trajectory line (timestamp, sha, per-workload "
                        "min_s + fingerprint) to FILE")
    args = parser.parse_args(argv)
    if args.compare:
        return compare(args)
    return record(args)


if __name__ == "__main__":
    sys.exit(main())
