"""Ablation bench: one node vs two nodes (§VI-D, solutions 7 vs 8).

"Solutions 7 and 8 using the same configuration except for the number of
nodes do not provide the same reward... Distributing the learning to
speed up the computation comes with uncertainties and a lack of
reproducibility regarding the accuracy."

We rerun the 7/8 pair over several seeds and check:

* two nodes are consistently *faster* (the paper's speed-up);
* two nodes consume more energy (a second idle floor plus the network);
* one node achieves a better mean reward (the staleness penalty).
"""

from __future__ import annotations

import numpy as np

import repro.airdrop  # noqa: F401
from repro.frameworks import TrainSpec, get_framework

from .conftest import BENCH_STEPS, once


def _train(n_nodes: int, seed: int, steps: int):
    fw = get_framework("rllib")
    spec = TrainSpec(
        algorithm="ppo",
        n_nodes=n_nodes,
        cores_per_node=4,
        seed=seed,
        env_kwargs={"rk_order": 8},
        total_steps=steps,
    )
    return fw.train(spec)


def test_bench_nodes_ablation(benchmark):
    steps = max(4000, BENCH_STEPS // 2)
    seeds = (0, 1, 2)

    def sweep():
        rows = {}
        for nodes in (1, 2):
            results = [_train(nodes, seed, steps) for seed in seeds]
            rows[nodes] = {
                "time_min": float(np.mean([r.computation_time_min for r in results])),
                "energy_kj": float(np.mean([r.energy_kj for r in results])),
                "reward": float(np.mean([r.reward for r in results])),
                "rewards": [round(r.reward, 3) for r in results],
            }
        return rows

    rows = once(benchmark, sweep)
    print("\nnode-count ablation (rllib/ppo/rk8/4c, solutions 7 vs 8):")
    for nodes, row in rows.items():
        print(
            f"  {nodes} node(s): time {row['time_min']:6.1f} min  "
            f"energy {row['energy_kj']:6.1f} kJ  reward {row['reward']:7.3f} {row['rewards']}"
        )

    # speed-up from distribution (paper: 85 min → 56 min)
    assert rows[2]["time_min"] < rows[1]["time_min"] * 0.8
    # energy cost of the second node
    assert rows[2]["energy_kj"] > rows[1]["energy_kj"]
    # accuracy penalty of distribution (paper: −0.52 → −0.73)
    assert rows[1]["reward"] > rows[2]["reward"]


def test_bench_staleness_is_the_mechanism(benchmark):
    """Disable the RLlib layout's policy staleness and the 2-node reward
    penalty should shrink — demonstrating the §VI-D mechanism is the
    off-policy lag, not the node count itself."""
    from repro.frameworks import RLlibLike, WorkerLayout

    class FreshRLlib(RLlibLike):
        name = "rllib"  # same seed stream as the real back-end

        def layout(self, spec):
            base = super().layout(spec)
            return WorkerLayout(
                worker_nodes=base.worker_nodes,
                learner_node=base.learner_node,
                stale_remote_policy=False,
                ships_experience=True,
            )

    steps = max(4000, BENCH_STEPS // 2)
    seeds = (0, 1, 2)

    def run(cls):
        rewards = []
        for seed in seeds:
            fw = cls()
            spec = TrainSpec(
                algorithm="ppo", n_nodes=2, cores_per_node=4, seed=seed,
                env_kwargs={"rk_order": 8}, total_steps=steps,
            )
            rewards.append(fw.train(spec).reward)
        return float(np.mean(rewards))

    from repro.frameworks import RLlibLike as Stale

    result = once(benchmark, lambda: {"stale": run(Stale), "fresh": run(FreshRLlib)})
    print(f"\n2-node reward with stale remote policy: {result['stale']:.3f}")
    print(f"2-node reward with fresh remote policy: {result['fresh']:.3f}")
    assert result["fresh"] >= result["stale"] - 0.05
