"""Bench: wall-clock effect of the parallel trial executors.

Two measurements on the §V Table I campaign shape:

* **table1** — the real 18-configuration campaign, serial vs process
  executor. On a multi-core host the process executor approaches
  ``min(max_workers, cores)``× speedup; on a single-core container it
  documents the overhead of process dispatch instead (the determinism
  guarantee is asserted either way: both executors must produce
  byte-identical results tables).
* **blocking** — the same campaign driver over a case study that blocks
  (simulating the paper's real deployment, where each trial waits on a
  remote Grid'5000 training job). Here overlap wins even on one core,
  which is exactly the regime the executor subsystem targets.

Environment knobs: ``REPRO_BENCH_EXEC_STEPS`` (default 4000) sizes the
real campaign; ``REPRO_BENCH_EXEC_WORKERS`` (default 4) sizes the pools.
"""

from __future__ import annotations

import os
import time

from repro.core import Campaign, Categorical, GridSearch, Metric, MetricSet, ParameterSpace
from repro.core.serialization import table_fingerprint
from repro.paper import Scale, table1_campaign

from .conftest import BENCH_SEED, once

EXEC_STEPS = int(os.environ.get("REPRO_BENCH_EXEC_STEPS", "4000"))
EXEC_WORKERS = int(os.environ.get("REPRO_BENCH_EXEC_WORKERS", "4"))


class BlockingCaseStudy:
    """Each trial blocks ~like a remote training submission would."""

    def __init__(self, block_s: float = 0.25):
        self.block_s = block_s

    def evaluate(self, config, seed, progress=None):
        time.sleep(self.block_s)
        return {"reward": float(config["quality"]), "time": float(config["cost"])}


def _blocking_campaign(executor, max_workers):
    space = ParameterSpace(
        [Categorical("quality", [1, 2, 3, 4]), Categorical("cost", [10, 20, 30])]
    )
    return Campaign(
        BlockingCaseStudy(),
        space,
        GridSearch(space),
        MetricSet([Metric(name="reward", direction="max"),
                   Metric(name="time", direction="min")]),
        executor=executor,
        max_workers=max_workers,
    )


def _timed(campaign):
    start = time.perf_counter()
    report = campaign.run()
    return report, time.perf_counter() - start


def test_bench_executor_speedup(benchmark):
    def sweep():
        scale = Scale(real_steps=EXEC_STEPS)
        serial_report, serial_s = _timed(
            table1_campaign(seed=BENCH_SEED, scale=scale)
        )
        process_report, process_s = _timed(
            table1_campaign(seed=BENCH_SEED, scale=scale,
                            executor="process", max_workers=EXEC_WORKERS)
        )
        blocking_serial, blk_serial_s = _timed(_blocking_campaign(None, 1))
        blocking_thread, blk_thread_s = _timed(
            _blocking_campaign("thread", EXEC_WORKERS)
        )
        return {
            "serial_s": serial_s,
            "process_s": process_s,
            "identical": table_fingerprint(serial_report.table)
            == table_fingerprint(process_report.table),
            "blk_serial_s": blk_serial_s,
            "blk_thread_s": blk_thread_s,
            "blk_identical": table_fingerprint(blocking_serial.table)
            == table_fingerprint(blocking_thread.table),
        }

    rows = once(benchmark, sweep)
    cores = os.cpu_count() or 1
    print(f"\nexecutor speedup ({EXEC_STEPS} steps/trial, "
          f"{EXEC_WORKERS} workers, {cores} host cores):")
    print(f"  table1 campaign : serial {rows['serial_s']:7.2f}s   "
          f"process {rows['process_s']:7.2f}s   "
          f"speedup {rows['serial_s'] / rows['process_s']:5.2f}x")
    print(f"  blocking trials : serial {rows['blk_serial_s']:7.2f}s   "
          f"thread  {rows['blk_thread_s']:7.2f}s   "
          f"speedup {rows['blk_serial_s'] / rows['blk_thread_s']:5.2f}x")

    # determinism holds through the parallel paths, always
    assert rows["identical"]
    assert rows["blk_identical"]
    # blocking workloads must overlap regardless of core count
    assert rows["blk_thread_s"] < rows["blk_serial_s"] * 0.7
    # process dispatch overhead stays bounded even on one core
    assert rows["process_s"] < rows["serial_s"] * (3.0 if cores == 1 else 1.2)
