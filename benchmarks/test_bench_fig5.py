"""Bench: regenerate Figure 5 — Power Consumption vs Computation Time.

Paper findings reproduced (§VI-B):

* solution 11 (TF-Agents, one node, 4 cores) is the least power-consuming
  solution of the whole campaign (paper: 120 kJ);
* solution 2 remains the fastest; both sit on the front;
* "all selected solutions use the PPO algorithm as well as all the 4
  available CPU cores".
"""

from __future__ import annotations

from repro.core import render_scatter
from repro.paper import compare_front, figure_front

from .conftest import once


def test_bench_fig5(benchmark, table1_report):
    front = once(benchmark, figure_front, table1_report, "fig5")

    table = table1_report.table
    mx = table.metrics["computation_time"]
    my = table.metrics["power_consumption"]
    print("\n" + render_scatter(
        table.completed(), mx, my, front_ids=front,
        title="Figure 5: Power Consumption vs Computation Time",
    ))
    comparison = compare_front(table1_report, "fig5")
    print(comparison.describe())

    trials = {t.trial_id: t for t in table.completed()}

    # minimum-power solution is 11 and it is on the front
    cheapest = min(trials.values(), key=lambda t: t.objectives["power_consumption"])
    assert cheapest.trial_id == 11
    assert cheapest.config["framework"] == "tfagents"
    assert 11 in front

    # fastest is on the front too
    assert 2 in front

    # §VI-B: every front member uses PPO and all 4 cores
    for trial_id in front:
        assert trials[trial_id].config["algorithm"] == "ppo"
        assert trials[trial_id].config["cores_per_node"] == 4

    assert comparison.recall >= 0.5, comparison.describe()


def test_bench_fig5_intra_node_beats_distribution(benchmark, table1_report):
    """§VI-B: 'intra-node parallelism is a more efficient choice than
    distributing the computation among the nodes' — the one-node TFA
    solution needs less energy than any two-node solution."""

    def check():
        trials = {t.trial_id: t for t in table1_report.table.completed()}
        tfa_energy = trials[11].objectives["power_consumption"]
        for trial_id, trial in trials.items():
            if trial.config["n_nodes"] == 2:
                assert trial.objectives["power_consumption"] > tfa_energy
        return tfa_energy

    assert once(benchmark, check) > 0
