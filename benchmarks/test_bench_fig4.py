"""Bench: regenerate Figure 4 — Reward vs Computation Time Pareto front.

Paper findings reproduced here (§VI-A):

* the front's fast extreme is solution 2 (RLlib, RK3, 2 nodes, 4 cores);
* the front's reward extreme is a Stable-Baselines RK8 solution (16);
* every front member runs PPO ("SAC solutions didn't perform well for
  these metrics").
"""

from __future__ import annotations

from repro.core import render_scatter
from repro.paper import compare_front, figure_front

from .conftest import once


def test_bench_fig4(benchmark, table1_report):
    front = once(benchmark, figure_front, table1_report, "fig4")

    table = table1_report.table
    mx = table.metrics["computation_time"]
    my = table.metrics["reward"]
    print("\n" + render_scatter(
        table.completed(), mx, my, front_ids=front,
        title="Figure 4: Reward vs Computation Time",
    ))
    comparison = compare_front(table1_report, "fig4")
    print(comparison.describe())

    trials = {t.trial_id: t for t in table.completed()}

    # the fastest configuration overall is solution 2, and it is on the front
    fastest = min(trials.values(), key=lambda t: t.objectives["computation_time"])
    assert fastest.trial_id == 2
    assert 2 in front

    # the best reward belongs to a Stable Baselines PPO solution, on the front
    best = max(trials.values(), key=lambda t: t.objectives["reward"])
    assert best.config["framework"] == "stable"
    assert best.config["algorithm"] == "ppo"
    assert best.trial_id in front

    # §VI-A: "all the presented solutions for this trade-off are using PPO"
    for trial_id in front:
        assert trials[trial_id].config["algorithm"] == "ppo", (
            f"solution {trial_id} on the fig4 front runs SAC — paper shape violated"
        )

    # overlap with the paper's highlighted front {2, 5, 11, 16}
    assert comparison.recall >= 0.5, comparison.describe()
