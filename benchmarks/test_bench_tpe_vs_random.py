"""Bench: the §III-C implementation alternative — TPE + pruning vs the
paper's Random Search.

The paper suggests implementing the methodology with a hyperparameter-
optimization framework (Optuna / Hyperopt): model-based sampling plus
pruning of unpromising trials. This bench quantifies both claims on
deterministic surrogates of the campaign objective (so the comparison is
about the *explorers*, not training noise):

* on the continuous axis (learning-rate tuning) TPE reaches a far better
  best objective than Random Search at an equal trial budget;
* on the full mixed space the comparison is reported (TPE's categorical
  lock-in at small budgets is a known weakness — we print both numbers);
* the median pruner cuts a large share of simulated training steps while
  keeping the best configuration.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    Campaign,
    Categorical,
    Explorer,
    Float,
    MedianPruner,
    Metric,
    MetricSet,
    ParameterSpace,
    RandomSearch,
    SortedTableRanking,
    TPESampler,
)

from .conftest import once


def continuous_space() -> ParameterSpace:
    return ParameterSpace([Float("lr", 1e-5, 1e-1, log=True)])


def mixed_space() -> ParameterSpace:
    return ParameterSpace(
        [
            Float("lr", 1e-5, 1e-1, log=True),
            Categorical("rk_order", [3, 5, 8]),
            Categorical("cores", [2, 4]),
        ]
    )


def surrogate_loss(values) -> float:
    """Smooth deterministic stand-in for (negated) campaign reward."""
    loss = (np.log10(values["lr"]) + 3.0) ** 2  # optimum at 1e-3
    if "rk_order" in values:
        loss += {3: 0.15, 5: 0.05, 8: 0.0}[values["rk_order"]]
    if "cores" in values:
        loss += 0.0 if values["cores"] == 4 else 0.05
    return float(loss)


class SurrogateCaseStudy:
    """Emits a 5-checkpoint learning curve so pruners can act."""

    def __init__(self):
        self.total_steps_executed = 0

    def evaluate(self, config, seed, progress=None):
        loss = surrogate_loss(config)
        checkpoints = 5
        for step in range(1, checkpoints + 1):
            self.total_steps_executed += 1
            value = -loss * (2.0 - step / checkpoints)  # improves over time
            if progress is not None and progress(step, value):
                return {"loss": loss}
        return {"loss": loss}


def best_loss_with(space_factory, explorer_factory, seeds, n_trials) -> float:
    bests = []
    for seed in seeds:
        space = space_factory()
        campaign = Campaign(
            SurrogateCaseStudy(),
            space,
            explorer_factory(space, seed, n_trials),
            MetricSet([Metric(name="loss", direction="min")]),
            rankers=[SortedTableRanking("loss")],
        )
        report = campaign.run()
        bests.append(report.table.best("loss").objectives["loss"])
    return float(np.mean(bests))


def _random(space: ParameterSpace, seed: int, n: int) -> Explorer:
    return RandomSearch(space, n, seed=seed, dedupe=False)


def _tpe(space: ParameterSpace, seed: int, n: int) -> Explorer:
    return TPESampler(space, n, seed=seed, n_startup=8)


def test_bench_tpe_beats_random_continuous(benchmark):
    seeds = range(8)
    n_trials = 40

    def compare():
        return {
            "random": best_loss_with(continuous_space, _random, seeds, n_trials),
            "tpe": best_loss_with(continuous_space, _tpe, seeds, n_trials),
        }

    result = once(benchmark, compare)
    print(f"\ncontinuous lr tuning, mean best loss over 8 seeds x {n_trials} trials:")
    print(f"  random search: {result['random']:.6f}")
    print(f"  tpe          : {result['tpe']:.6f}")
    # model-based refinement is decisively better on the continuous axis
    assert result["tpe"] < result["random"] * 0.5


def test_bench_tpe_vs_random_mixed(benchmark):
    seeds = range(8)
    n_trials = 40

    def compare():
        return {
            "random": best_loss_with(mixed_space, _random, seeds, n_trials),
            "tpe": best_loss_with(mixed_space, _tpe, seeds, n_trials),
        }

    result = once(benchmark, compare)
    print(f"\nmixed space, mean best loss over 8 seeds x {n_trials} trials:")
    print(f"  random search: {result['random']:.4f}")
    print(f"  tpe          : {result['tpe']:.4f}")
    # reported, not strictly asserted: categorical lock-in can cost TPE a
    # constant offset at this budget; it must stay in the same ballpark.
    assert result["tpe"] < result["random"] + 0.5


def test_bench_median_pruner_saves_steps(benchmark):
    def run(with_pruner: bool):
        space = mixed_space()
        study = SurrogateCaseStudy()
        campaign = Campaign(
            study,
            space,
            RandomSearch(space, 30, seed=0, dedupe=False),
            MetricSet([Metric(name="loss", direction="min")]),
            rankers=[SortedTableRanking("loss")],
            pruner=MedianPruner(n_startup_trials=5) if with_pruner else None,
        )
        report = campaign.run()
        best = report.table.best("loss").objectives["loss"]
        return study.total_steps_executed, best

    result = once(
        benchmark,
        lambda: {"full": run(False), "pruned": run(True)},
    )
    full_steps, full_best = result["full"]
    pruned_steps, pruned_best = result["pruned"]
    saved = 1.0 - pruned_steps / full_steps
    print(f"\nsimulated steps without pruning: {full_steps} (best {full_best:.4f})")
    print(f"simulated steps with pruning   : {pruned_steps} (best {pruned_best:.4f})")
    print(f"steps saved: {saved:.0%}")
    assert pruned_steps < full_steps
    assert pruned_best <= full_best * 1.5 + 1e-9  # quality essentially preserved
