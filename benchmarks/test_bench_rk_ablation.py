"""Ablation bench: the Runge–Kutta order trade-off (§IV-B, Table I pairs).

"If the Runge-Kutta order is lower, then the computation time will be
lower but the accuracy of the solution will also be lower." We sweep the
order at an otherwise fixed configuration (Stable Baselines / PPO /
1 node / 4 cores) and verify:

* computation time increases monotonically with the order;
* the cost ratio RK8/RK3 stays mild (stages are only part of a step);
* trajectory accuracy (against a fine reference integration) improves
  monotonically with the order;
* learned reward does not *improve* when dropping from order 8 to 3
  (averaged over seeds — the paper's accuracy-to-reward chain).
"""

from __future__ import annotations

import numpy as np

import repro.airdrop  # noqa: F401
from repro.airdrop import ParafoilParams, get_integrator, make_rhs
from repro.airdrop.dynamics import STATE_DIM
from repro.frameworks import TrainSpec, get_framework

from .conftest import BENCH_STEPS, once


def _train(rk_order: int, seed: int, steps: int):
    fw = get_framework("stable")
    spec = TrainSpec(
        algorithm="ppo",
        n_nodes=1,
        cores_per_node=4,
        seed=seed,
        env_kwargs={"rk_order": rk_order},
        total_steps=steps,
    )
    return fw.train(spec)


def test_bench_rk_order_sweep(benchmark, bench_scale):
    steps = max(2000, BENCH_STEPS // 4)
    seeds = (0, 1)

    def sweep():
        out = {}
        for order in (3, 5, 8):
            results = [_train(order, seed, steps) for seed in seeds]
            out[order] = {
                "time_min": float(np.mean([r.computation_time_min for r in results])),
                "energy_kj": float(np.mean([r.energy_kj for r in results])),
                "reward": float(np.mean([r.reward for r in results])),
            }
        return out

    table = once(benchmark, sweep)
    print("\nRK-order ablation (stable/ppo/1n/4c):")
    for order, row in table.items():
        print(
            f"  order {order}: time {row['time_min']:6.1f} min  "
            f"energy {row['energy_kj']:6.1f} kJ  reward {row['reward']:7.3f}"
        )

    # §IV-B cost ordering
    assert table[3]["time_min"] < table[5]["time_min"] < table[8]["time_min"]
    assert table[3]["energy_kj"] < table[8]["energy_kj"]
    # stage count is 4x but fixed per-step overheads dominate: mild ratio
    ratio = table[8]["time_min"] / table[3]["time_min"]
    assert 1.1 < ratio < 2.2, f"RK8/RK3 time ratio {ratio:.2f} outside the paper's band"
    # accuracy chain: coarse integration must not *beat* accurate physics
    assert table[8]["reward"] >= table[3]["reward"] - 0.1


def test_bench_rk_trajectory_error(benchmark):
    """Open-loop accuracy: positional error vs a fine DOP853 reference."""
    params = ParafoilParams()

    def trajectory_error(order: int) -> float:
        tab = get_integrator(order)
        ref_tab = get_integrator(8)
        y = np.zeros(STATE_DIM)
        y[2], y[5], y[6] = 600.0, params.v_trim, params.vz_trim
        y_ref = y.copy()
        h, substeps = 1.0, 32
        t = 0.0
        for k in range(100):
            u = np.sin(0.15 * k) * 0.9
            rhs = make_rhs(u, np.zeros(2), params)
            y = tab.step(rhs, t, y, h)
            for j in range(substeps):
                y_ref = ref_tab.step(rhs, t + j * h / substeps, y_ref, h / substeps)
            t += h
        return float(np.hypot(y[0] - y_ref[0], y[1] - y_ref[1]))

    errors = once(benchmark, lambda: {order: trajectory_error(order) for order in (3, 5, 8)})
    print("\nopen-loop positional error vs fine reference (100 s maneuver):")
    for order, err in errors.items():
        print(f"  order {order}: {err:10.3f} m")
    assert errors[3] > errors[5] > errors[8]
    assert errors[3] > 1.0      # order 3 visibly distorts the trajectory
    assert errors[8] < 0.01     # order 8 is essentially exact at this step
