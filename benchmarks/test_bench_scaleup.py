"""Extension bench: scaling beyond the paper's two nodes (§VII future work).

The paper plans to "scale up the experiments, potentially using a
large-scale distributed testbed such as Grid'5000". We project that study
on the simulated substrate: the RLlib-like back-end on homogeneous
clusters of 1–4 nodes, measuring the speed-up curve, the energy bill and
the reward trend as the actor fleet grows.

Expected shape (an extrapolation of the paper's 1-vs-2-node findings):

* computation time falls with node count but sub-linearly (the learner
  and the link serialize);
* energy rises with node count (idle floors multiply);
* reward degrades as more remote actors act on stale weights.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.airdrop  # noqa: F401
from repro.cluster import grid_cluster
from repro.frameworks import RLlibLike, TrainSpec

from .conftest import BENCH_STEPS, once


def test_bench_node_scaling_curve(benchmark):
    steps = max(4000, BENCH_STEPS // 2)
    node_counts = (1, 2, 3, 4)
    seeds = (0, 1)

    def sweep():
        rows = {}
        for n_nodes in node_counts:
            cluster = grid_cluster(4, cores_per_node=4)
            results = []
            for seed in seeds:
                fw = RLlibLike(cluster=cluster)
                spec = TrainSpec(
                    algorithm="ppo",
                    n_nodes=n_nodes,
                    cores_per_node=4,
                    seed=seed,
                    env_kwargs={"rk_order": 5},
                    total_steps=steps,
                )
                results.append(fw.train(spec))
            rows[n_nodes] = {
                "time_min": float(np.mean([r.computation_time_min for r in results])),
                "energy_kj": float(np.mean([r.energy_kj for r in results])),
                "reward": float(np.mean([r.reward for r in results])),
            }
        return rows

    rows = once(benchmark, sweep)
    base = rows[1]["time_min"]
    print("\nnode-scaling projection (rllib/ppo/rk5/4c per node):")
    for n, row in rows.items():
        print(
            f"  {n} node(s): time {row['time_min']:6.1f} min "
            f"(speedup {base / row['time_min']:4.2f}x)  "
            f"energy {row['energy_kj']:6.1f} kJ  reward {row['reward']:7.3f}"
        )

    times = [rows[n]["time_min"] for n in node_counts]
    energies = [rows[n]["energy_kj"] for n in node_counts]

    # time falls monotonically with nodes...
    assert all(t2 < t1 for t1, t2 in zip(times, times[1:]))
    # ...but sub-linearly: 4 nodes achieve < 3x speedup
    assert base / times[-1] < 3.0
    # energy grows monotonically past 2 nodes (idle floors multiply)
    assert energies[-1] > energies[1]
    # the single-node reward is not beaten by the most distributed setup
    assert rows[1]["reward"] >= rows[4]["reward"] - 0.15


def test_bench_bandwidth_grows_with_nodes(benchmark):
    steps = max(2000, BENCH_STEPS // 8)

    def sweep():
        out = {}
        for n_nodes in (2, 4):
            fw = RLlibLike(cluster=grid_cluster(4, cores_per_node=4))
            spec = TrainSpec(
                algorithm="ppo", n_nodes=n_nodes, cores_per_node=4, seed=0,
                env_kwargs={"rk_order": 3}, total_steps=steps,
            )
            result = fw.train(spec)
            out[n_nodes] = result.diagnostics["bytes_transferred"]
        return out

    transferred = once(benchmark, sweep)
    print(f"\nbytes over the interconnect: {transferred}")
    # more remote nodes ship more experience
    assert transferred[4] > transferred[2] > 0


def test_bench_faster_cores_shift_tradeoffs(benchmark):
    """Heterogeneity probe: doubling core speed must roughly halve the
    virtual time at unchanged learning results."""
    steps = max(2000, BENCH_STEPS // 8)

    def run(speed: float):
        fw = RLlibLike(cluster=grid_cluster(2, cores_per_node=4, core_speed=speed))
        spec = TrainSpec(
            algorithm="ppo", n_nodes=1, cores_per_node=4, seed=0,
            env_kwargs={"rk_order": 5}, total_steps=steps,
        )
        return fw.train(spec)

    result = once(benchmark, lambda: {"1x": run(1.0), "2x": run(2.0)})
    t1, t2 = result["1x"].computation_time_s, result["2x"].computation_time_s
    print(f"\ncore speed 1x: {t1 / 60:.1f} min; 2x: {t2 / 60:.1f} min")
    assert t2 == pytest.approx(t1 / 2.0, rel=0.05)
    assert result["1x"].reward == result["2x"].reward  # learning unchanged

