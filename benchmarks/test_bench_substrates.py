"""µ-benchmarks of every substrate (engineering hygiene, not in the paper).

These quantify the host-side cost of the building blocks so regressions in
the hot paths (integrator stages, network passes, event engine, Pareto
sorting) show up in CI timelines.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.airdrop  # noqa: F401
from repro.airdrop import AirdropEnv, ParafoilParams, get_integrator, make_rhs
from repro.airdrop.dynamics import STATE_DIM
from repro.cluster import ClusterSimulator, paper_testbed
from repro.core import non_dominated_mask, pareto_fronts
from repro.rl import MLP, Adam, PPOAgent, SACAgent, SACConfig


@pytest.mark.parametrize("order", [3, 5, 8])
def test_bench_integrator_step(benchmark, order):
    params = ParafoilParams()
    tab = get_integrator(order)
    rhs = make_rhs(0.5, np.zeros(2), params)
    y = np.zeros(STATE_DIM)
    y[2], y[5], y[6] = 500.0, 10.0, 5.0

    result = benchmark(lambda: tab.step(rhs, 0.0, y, 1.0))
    assert np.all(np.isfinite(result))


def test_bench_env_step(benchmark):
    env = AirdropEnv(rk_order=5)
    env.reset(seed=0)
    action = np.array([0.3])

    def step():
        obs, _, term, trunc, _ = env.step(action)
        if term or trunc:
            env.reset()
        return obs

    obs = benchmark(step)
    assert obs.shape == (13,)


def test_bench_env_full_episode(benchmark):
    env = AirdropEnv(rk_order=5, altitude_limits=(200.0, 200.0))

    def episode():
        env.reset(seed=1)
        steps = 0
        while True:
            _, _, term, trunc, _ = env.step(np.array([0.2]))
            steps += 1
            if term or trunc:
                return steps

    steps = benchmark(episode)
    assert steps > 10


def test_bench_mlp_forward_backward(benchmark):
    rng = np.random.default_rng(0)
    net = MLP((13, 64, 64, 1), rng)
    x = rng.standard_normal((256, 13))

    def fwd_bwd():
        y = net.forward(x)
        net.zero_grad()
        net.backward(np.ones_like(y))
        return y

    y = benchmark(fwd_bwd)
    assert y.shape == (256, 1)


def test_bench_adam_step(benchmark):
    rng = np.random.default_rng(0)
    net = MLP((13, 64, 64, 1), rng)
    opt = Adam(net.parameters(), lr=3e-4)
    for p in net.parameters():
        p.grad += 0.01

    benchmark(opt.step)


def test_bench_ppo_update(benchmark):
    agent = PPOAgent(13, 1, seed=0)
    buf = agent.make_buffer(256, 4)
    rng = np.random.default_rng(0)
    obs = rng.standard_normal((4, 13))
    for _ in range(256):
        out = agent.act(obs)
        buf.add(
            obs, out["action"], out["log_prob"], rng.standard_normal(4),
            out["value"], np.zeros(4), np.zeros(4), np.zeros(4),
        )
    buf.finish(agent.value(obs))

    benchmark(lambda: agent.update(buf))


def test_bench_sac_update(benchmark):
    agent = SACAgent(13, 1, SACConfig(learning_starts=0, batch_size=128), seed=0)
    rng = np.random.default_rng(0)
    for _ in range(1000):
        agent.observe(
            rng.standard_normal(13), rng.uniform(-1, 1, 1), rng.standard_normal(),
            rng.standard_normal(13), False,
        )

    benchmark(agent.update)


def test_bench_event_engine_throughput(benchmark):
    """Schedule-and-run 2000 dependent tasks across the 2-node testbed."""

    def run():
        sim = ClusterSimulator(paper_testbed(2))
        prev = None
        for i in range(2000):
            deps = [prev] if prev is not None and i % 7 == 0 else []
            prev = sim.task(f"t{i}", i % 2, duration=0.01, cores=1 + i % 2, deps=deps)
        return sim.run().makespan

    makespan = benchmark(run)
    assert makespan > 0


def test_bench_pareto_sort_1000(benchmark, rng):
    pts = rng.standard_normal((1000, 3))
    mask = benchmark(lambda: non_dominated_mask(pts, ["min", "min", "min"]))
    assert mask.any()


def test_bench_full_front_partition_500(benchmark, rng):
    pts = rng.standard_normal((500, 2))
    fronts = benchmark(lambda: pareto_fronts(pts, ["min", "min"]))
    assert sum(len(f) for f in fronts) == 500
